"""Experiment: Table 4 — effects of resource type on loading dependencies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import ResourceTypeAnalyzer, TypeChainRow, VerticalAnalyzer
from ..reporting import percent, render_table
from ..stats import TestResult
from .runner import ExperimentContext


@dataclass(frozen=True)
class Table4Result:
    same_chain_rows: List[TypeChainRow]  # Table 4a
    low_similarity_rows: List[TypeChainRow]  # Table 4b
    party_same_chain: Dict[str, float]
    tracking_same_chain: Dict[str, float]
    type_effect: TestResult


def run(ctx: ExperimentContext) -> Table4Result:
    analyzer = ResourceTypeAnalyzer()
    vertical = VerticalAnalyzer()
    records = vertical.all_records(ctx.dataset)
    party_counts = {"first": [0, 0], "third": [0, 0]}
    tracking_counts = {"tracking": [0, 0], "non_tracking": [0, 0]}
    for record in records:
        if not record.in_all_profiles:
            continue
        party = "third" if record.is_third_party else "first"
        party_counts[party][1] += 1
        if record.same_chain:
            party_counts[party][0] += 1
        bucket = "tracking" if record.is_tracking else "non_tracking"
        tracking_counts[bucket][1] += 1
        if record.same_parent:
            tracking_counts[bucket][0] += 1
    return Table4Result(
        same_chain_rows=analyzer.table4a(ctx.dataset),
        low_similarity_rows=analyzer.table4b(ctx.dataset),
        party_same_chain={
            key: same / total if total else 0.0
            for key, (same, total) in party_counts.items()
        },
        tracking_same_chain={
            key: same / total if total else 0.0
            for key, (same, total) in tracking_counts.items()
        },
        type_effect=analyzer.type_effect_test(ctx.dataset),
    )


def render(result: Table4Result) -> str:
    table_a = render_table(
        headers=["Node type", "Same chains"],
        rows=[
            [row.resource_type.value, percent(row.same_chain_share)]
            for row in result.same_chain_rows
        ],
        title="Table 4a: Same dependency chain",
    )
    table_b = render_table(
        headers=["Node type", "Similarity"],
        rows=[
            [row.resource_type.value, row.mean_parent_similarity]
            for row in result.low_similarity_rows
        ],
        title="Table 4b: Lowest similarity",
    )
    notes = [
        f"first-party nodes with same chain:  {percent(result.party_same_chain['first'])}",
        f"third-party nodes with same chain:  {percent(result.party_same_chain['third'])}",
        f"tracking nodes same parent:         {percent(result.tracking_same_chain['tracking'])}",
        f"non-tracking nodes same parent:     {percent(result.tracking_same_chain['non_tracking'])}",
        f"resource type affects similarity:   Kruskal-Wallis p={result.type_effect.p_value:.4f}"
        f" ({'significant' if result.type_effect.significant else 'not significant'})",
    ]
    return f"{table_a}\n\n{table_b}\n\n" + "\n".join(notes)
