"""Experiment: the measurement-variance metric (paper takeaways #1 and #4).

Not a paper table — the paper *calls for* this metric as future work
("developing a metric to understand a measurement's potential
error/variance is vital").  The experiment computes:

* the distribution of the per-page fluctuation index,
* the profile coverage curve (how much of a page's behaviour k profiles
  capture) and the profile count needed for 95% coverage,
* bootstrap confidence intervals for the headline similarity statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis import VarianceAnalyzer, bootstrap_ci, page_child_similarity
from ..analysis.variance import FluctuationScore
from ..reporting import percent, render_kv, render_series
from ..stats import Summary
from .runner import ExperimentContext


@dataclass(frozen=True)
class VarianceResult:
    fluctuation: Summary
    most_fluctuating: FluctuationScore
    most_stable: FluctuationScore
    coverage_curve: Dict[int, float]
    profiles_for_95: Optional[int]
    child_similarity_ci: Tuple[float, float, float]


def run(ctx: ExperimentContext) -> VarianceResult:
    analyzer = VarianceAnalyzer()
    scores = [analyzer.fluctuation(entry.comparison) for entry in ctx.dataset]
    ordered = sorted(scores, key=lambda score: score.score)
    return VarianceResult(
        fluctuation=analyzer.fluctuation_summary(ctx.dataset),
        most_fluctuating=ordered[-1],
        most_stable=ordered[0],
        coverage_curve=analyzer.mean_coverage_curve(ctx.dataset),
        profiles_for_95=analyzer.profiles_needed(ctx.dataset, target=0.95),
        child_similarity_ci=bootstrap_ci(
            ctx.dataset, page_child_similarity, iterations=300
        ),
    )


def render(result: VarianceResult) -> str:
    point, low, high = result.child_similarity_ci
    header = render_kv(
        [
            (
                "fluctuation index",
                f"mean {result.fluctuation.mean:.2f} (SD {result.fluctuation.sd:.2f}, "
                f"min {result.fluctuation.minimum:.2f}, max {result.fluctuation.maximum:.2f})",
            ),
            (
                "most stable page",
                f"{result.most_stable.page_url} ({result.most_stable.score:.2f}, "
                f"{result.most_stable.band()})",
            ),
            (
                "most fluctuating page",
                f"{result.most_fluctuating.page_url} ({result.most_fluctuating.score:.2f}, "
                f"{result.most_fluctuating.band()})",
            ),
            (
                "child similarity (bootstrap 95% CI)",
                f"{point:.3f} [{low:.3f}, {high:.3f}]",
            ),
            (
                "profiles needed for 95% node coverage",
                result.profiles_for_95 if result.profiles_for_95 else ">5",
            ),
        ],
        title="Measurement-variance metric (takeaways #1 and #4)",
    )
    curve = render_series(
        {
            "coverage": {
                k: value for k, value in result.coverage_curve.items()
            }
        },
        title="Expected union coverage by number of profiles:",
    )
    single = result.coverage_curve.get(1, 1.0)
    note = (
        f"a single-profile study captures {percent(single)} of the observable"
        " page behaviour on average"
    )
    return f"{header}\n\n{curve}\n\n{note}"
