"""The ``repro`` command line: crawl, analyze, export, inspect.

Subcommands::

    python -m repro crawl    --db run.sqlite --seed 1 --sites-per-bucket 2
    python -m repro analyze  --db run.sqlite --seed 1 --experiments table2,table6
    python -m repro export   --db run.sqlite --seed 1 --what nodes --out nodes.csv
    python -m repro inspect  --seed 1 --rank 1 [--profile Sim1] [--visit 3]
    python -m repro easylist --seed 1 [--out easylist.txt]

``crawl`` persists an OpenWPM-style SQLite database; ``analyze`` rebuilds
trees from it and prints any subset of the paper's tables/figures;
``inspect`` simulates a single page visit and renders its dependency tree.
The ``--seed`` must match between crawl and analyze so the synthetic
EasyList and site ranks regenerate identically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import AnalysisDataset
from .blocklist import build_filter_list, generate_easylist
from .browser import BrowserEngine, PAPER_PROFILES, profile_by_name
from .bundle import Bundle
from .crawler import Commander, MeasurementStore, RetryPolicy, sample_paper_buckets
from . import export as export_mod
from .experiments import ALL_EXPERIMENTS, ExperimentConfig
from .obs import (
    NULL_OBS,
    EventStream,
    Monitor,
    ObsContext,
    default_expected_failure_rate,
    render_alerts,
)
from .reporting.treeview import render_tree, render_tree_summary
from .trees import TreeBuilder
from .web import WebGenerator


class AnalysisContext:
    """Duck-typed stand-in for ExperimentContext backed by a stored crawl.

    Experiments that re-crawl (replication, timeout ablation, study
    comparability) read ``config``/``ranks``; both are reconstructed from
    the seed and the stored visits so every experiment runs on a stored
    db, not just the dataset-only ones.
    """

    def __init__(
        self,
        store: MeasurementStore,
        seed: int,
        jobs: int = 1,
        obs: ObsContext = NULL_OBS,
        include_partial: bool = False,
    ) -> None:
        self.store = store
        self.generator = WebGenerator(seed)
        ranks = [store.site_rank(site) for site in store.sites()]
        self.ranks = sorted(rank for rank in ranks if rank is not None)
        self.config = ExperimentConfig(
            seed=seed, pages_per_site=store.pages_per_site_cap()
        )
        with obs.tracer.span("filter-list", key="filter-list"):
            self.filter_list = build_filter_list(self.generator.ecosystem)
        self.dataset = AnalysisDataset.from_store(
            store,
            filter_list=self.filter_list,
            jobs=jobs,
            obs=obs,
            include_partial=include_partial,
        )
        self.summary = None

    @property
    def profile_names(self) -> List[str]:
        return self.store.profiles()


def _obs_for(args: argparse.Namespace) -> ObsContext:
    """An enabled context when the user asked for telemetry output."""
    if getattr(args, "trace", "") or getattr(args, "metrics_out", ""):
        return ObsContext.create(seed=getattr(args, "seed", None) or 0)
    return NULL_OBS


def _write_obs(obs: ObsContext, args: argparse.Namespace) -> None:
    if getattr(args, "trace", ""):
        count = obs.tracer.write_jsonl(args.trace)
        print(f"wrote {count} spans to {args.trace}")
    if getattr(args, "metrics_out", ""):
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(obs.metrics.to_json() + "\n")
        print(f"wrote {len(obs.metrics)} metrics to {args.metrics_out}")


def _cmd_crawl(args: argparse.Namespace) -> int:
    obs = _obs_for(args)
    generator = WebGenerator(args.seed)
    monitor = None
    if args.monitor or args.monitor_gate:
        if not obs.stream.enabled:
            # _obs_for never enables the stream; rebuild with it on
            # (nothing has been recorded yet).
            obs = ObsContext.create(seed=args.seed, stream=EventStream())
        expected = (
            args.monitor_expect
            if args.monitor_expect is not None
            else default_expected_failure_rate(
                generator.config.page_fail_probability
            )
        )
        monitor = Monitor.for_crawl(
            expected_rate=expected,
            on_alert=lambda alert: print(f"! {alert.format()}"),
        )
        obs.attach_monitor(monitor)
    store = MeasurementStore(args.db, obs=obs)
    commander = Commander(
        generator,
        store,
        max_pages_per_site=args.pages_per_site,
        workers=args.jobs,
        obs=obs,
        retry_policy=RetryPolicy.with_retries(args.retries),
        salvage_partial=args.salvage_partial,
    )
    ranks = sample_paper_buckets(args.seed, per_bucket=args.sites_per_bucket)
    summary = commander.run(ranks)
    print(
        f"crawled {summary.sites_crawled} sites, {summary.pages_discovered} pages, "
        f"{summary.total_visits} visits -> {args.db}"
    )
    for profile in PAPER_PROFILES:
        line = (
            f"  {profile.name:<9} visits: {summary.visits.get(profile.name, 0):>5} "
            f"success: {summary.success_rate(profile.name):.0%}"
        )
        if args.retries:
            line += f" recovered: {summary.recovered_count(profile.name)}"
        print(line)
    _write_obs(obs, args)
    store.close()
    if monitor is not None:
        print(render_alerts(monitor.alerts))
        if args.monitor_gate and monitor.has_critical:
            return 1
    return 0


def _open_source(args: argparse.Namespace, obs: ObsContext):
    """Resolve ``--db``/``--from-bundle`` into ``(store, seed)``.

    A bundle replays into an in-memory store and supplies its own seed;
    passing a conflicting ``--seed`` is an error rather than a silently
    wrong regeneration of the synthetic web.
    """
    if args.from_bundle and args.db:
        raise SystemExit("pass either --db or --from-bundle, not both")
    if args.from_bundle:
        bundle = Bundle.open(args.from_bundle)
        if args.seed is not None and args.seed != bundle.seed:
            raise SystemExit(
                f"--seed {args.seed} contradicts the bundle's recorded "
                f"seed {bundle.seed}"
            )
        return bundle.replay(obs=obs), bundle.seed
    if not args.db:
        raise SystemExit("one of --db or --from-bundle is required")
    return MeasurementStore(args.db, obs=obs), (
        args.seed if args.seed is not None else 2023
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    obs = _obs_for(args)
    store, seed = _open_source(args, obs)
    try:
        ctx = AnalysisContext(
            store,
            seed=seed,
            jobs=args.jobs,
            obs=obs,
            include_partial=args.include_partial,
        )
        if not len(ctx.dataset):
            print("no pages were crawled by all profiles; nothing to analyze")
            return 1
        selected = (
            [item.strip() for item in args.experiments.split(",") if item.strip()]
            if args.experiments
            else list(ALL_EXPERIMENTS)
        )
        unknown = [item for item in selected if item not in ALL_EXPERIMENTS]
        if unknown:
            print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
            return 2
        print(f"dataset: {len(ctx.dataset)} comparable pages\n")
        for experiment_id in selected:
            module = ALL_EXPERIMENTS[experiment_id]
            print(f"{'=' * 70}\n[{experiment_id}]\n{'=' * 70}")
            with obs.tracer.span(
                "experiment", key=f"experiment:{experiment_id}", id=experiment_id
            ):
                result = module.run(ctx)
            print(module.render(result))
            print()
        _write_obs(obs, args)
        return 0
    finally:
        store.close()


def _cmd_export(args: argparse.Namespace) -> int:
    store, seed = _open_source(args, NULL_OBS)
    try:
        if args.what == "visits":
            rows = export_mod.export_visits_csv(store, args.out)
        elif args.what in ("requests", "cookies"):
            exporter = {
                "requests": export_mod.export_requests_csv,
                "cookies": export_mod.export_cookies_csv,
            }[args.what]
            rows = exporter(store, args.out, include_partial=args.include_partial)
        else:
            ctx = AnalysisContext(
                store, seed=seed, include_partial=args.include_partial
            )
            if args.what == "trees":
                rows = export_mod.export_trees_jsonl(ctx.dataset, args.out)
            else:  # nodes
                rows = export_mod.export_node_comparisons_csv(ctx.dataset, args.out)
        print(f"wrote {rows} rows to {args.out}")
        return 0
    finally:
        store.close()


def _cmd_inspect(args: argparse.Namespace) -> int:
    generator = WebGenerator(args.seed)
    site = generator.site(args.rank)
    page = site.pages[args.page] if args.page < len(site.pages) else site.landing_page
    profile = profile_by_name(args.profile)
    engine = BrowserEngine(profile, seed=args.seed)
    result = engine.visit(page, site=site.domain, site_rank=args.rank, visit_id=args.visit)
    if not result.success:
        print(f"visit failed: {result.visit.failure_reason} (try another --visit)")
        return 1
    builder = TreeBuilder(filter_list=build_filter_list(generator.ecosystem))
    tree = builder.build(result.visit, result.requests)
    print(render_tree_summary(tree))
    print()
    print(render_tree(tree, max_depth=args.max_depth))
    return 0


def _cmd_easylist(args: argparse.Namespace) -> int:
    generator = WebGenerator(args.seed)
    text = generate_easylist(generator.ecosystem)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {len(text.splitlines())} lines to {args.out}")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Web-measurement similarity reproduction."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    crawl = sub.add_parser("crawl", help="run a measurement into a SQLite db")
    crawl.add_argument("--db", required=True)
    crawl.add_argument("--seed", type=int, default=2023)
    crawl.add_argument("--sites-per-bucket", type=int, default=2)
    crawl.add_argument("--pages-per-site", type=int, default=4)
    crawl.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sharded crawl (same store for any value)",
    )
    crawl.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-attempts per failed retryable visit (0 = paper's single attempt)",
    )
    crawl.add_argument(
        "--salvage-partial",
        action="store_true",
        help="store the partial traffic of timed-out visits (flagged partial)",
    )
    crawl.add_argument("--trace", default="", help="write a span trace (JSONL)")
    crawl.add_argument("--metrics-out", default="", help="write run metrics (JSON)")
    crawl.add_argument(
        "--monitor",
        action="store_true",
        help="stream the crawl through the live anomaly monitor",
    )
    crawl.add_argument(
        "--monitor-gate",
        action="store_true",
        help="with --monitor semantics, exit 1 when a critical alert fired",
    )
    crawl.add_argument(
        "--monitor-expect",
        type=float,
        default=None,
        help="override the monitor's expected per-visit failure rate",
    )
    crawl.set_defaults(func=_cmd_crawl)

    analyze = sub.add_parser("analyze", help="run paper analyses on a stored crawl")
    analyze.add_argument("--db", default="")
    analyze.add_argument(
        "--from-bundle",
        default="",
        help="replay a recorded crawl bundle instead of opening --db",
    )
    analyze.add_argument(
        "--seed",
        type=int,
        default=None,
        help="crawl seed (default 2023; a bundle supplies its own)",
    )
    analyze.add_argument(
        "--experiments", default="", help=f"comma-separated ids ({', '.join(ALL_EXPERIMENTS)})"
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel tree building (same metrics for any value)",
    )
    analyze.add_argument(
        "--include-partial",
        action="store_true",
        help="let salvaged partial visits stand in for missing successes",
    )
    analyze.add_argument("--trace", default="", help="write a span trace (JSONL)")
    analyze.add_argument("--metrics-out", default="", help="write run metrics (JSON)")
    analyze.set_defaults(func=_cmd_analyze)

    export = sub.add_parser("export", help="dump crawl/analysis data to files")
    export.add_argument("--db", default="")
    export.add_argument(
        "--from-bundle",
        default="",
        help="replay a recorded crawl bundle instead of opening --db",
    )
    export.add_argument(
        "--seed",
        type=int,
        default=None,
        help="crawl seed (default 2023; a bundle supplies its own)",
    )
    export.add_argument(
        "--what",
        choices=["visits", "requests", "cookies", "trees", "nodes"],
        required=True,
    )
    export.add_argument("--out", required=True)
    export.add_argument(
        "--include-partial",
        action="store_true",
        help="also export the salvaged traffic of partial visits",
    )
    export.set_defaults(func=_cmd_export)

    inspect = sub.add_parser("inspect", help="simulate one visit, print its tree")
    inspect.add_argument("--seed", type=int, default=2023)
    inspect.add_argument("--rank", type=int, default=1)
    inspect.add_argument("--page", type=int, default=0)
    inspect.add_argument("--profile", default="Sim1")
    inspect.add_argument("--visit", type=int, default=1)
    inspect.add_argument("--max-depth", type=int, default=None)
    inspect.set_defaults(func=_cmd_inspect)

    easylist = sub.add_parser("easylist", help="print the synthetic EasyList")
    easylist.add_argument("--seed", type=int, default=2023)
    easylist.add_argument("--out", default="")
    easylist.set_defaults(func=_cmd_easylist)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
