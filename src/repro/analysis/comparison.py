"""Cross-tree comparison of one page: the workhorse data structure.

:class:`PageComparison` aligns the five per-profile trees of a page by
node key and precomputes, for every node, the per-profile view (depth,
parent, children, type, party, tracking).  All higher-level analyses —
horizontal, vertical, depth, per-type, per-party — are expressed against
this structure, so the expensive alignment happens once per page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..errors import AnalysisError
from ..trees.tree import DependencyTree
from ..web.resources import ResourceType
from .jaccard import jaccard, pairwise_mean_jaccard


@dataclass(frozen=True)
class NodeView:
    """One tree's view of a node."""

    depth: int
    parent_key: Optional[str]
    children: FrozenSet[str]
    resource_type: ResourceType
    is_third_party: bool
    is_tracking: bool
    chain: Tuple[str, ...]
    during_interaction: bool

    @property
    def can_load_children(self) -> bool:
        return self.resource_type.can_load_children

    @property
    def child_count(self) -> int:
        return len(self.children)


@dataclass(frozen=True)
class NodeComparison:
    """A node's views across all profiles (``None`` where absent)."""

    key: str
    views: Tuple[Optional[NodeView], ...]

    # -- presence ------------------------------------------------------------

    @property
    def presence_count(self) -> int:
        return sum(1 for view in self.views if view is not None)

    @property
    def in_all_profiles(self) -> bool:
        return all(view is not None for view in self.views)

    @property
    def in_one_profile(self) -> bool:
        return self.presence_count == 1

    def present_views(self) -> List[NodeView]:
        return [view for view in self.views if view is not None]

    # -- representative attributes -------------------------------------------

    @property
    def any_view(self) -> NodeView:
        for view in self.views:
            if view is not None:
                return view
        raise AnalysisError(f"node {self.key!r} has no views")

    @property
    def resource_type(self) -> ResourceType:
        return self.any_view.resource_type

    @property
    def is_third_party(self) -> bool:
        return self.any_view.is_third_party

    @property
    def is_tracking(self) -> bool:
        return any(view.is_tracking for view in self.present_views())

    @property
    def min_depth(self) -> int:
        return min(view.depth for view in self.present_views())

    def depths(self) -> List[int]:
        return [view.depth for view in self.present_views()]

    @property
    def same_depth_everywhere(self) -> bool:
        depths = self.depths()
        return len(set(depths)) == 1

    # -- similarity measures ---------------------------------------------------

    def child_similarity(self) -> float:
        """Pairwise-mean Jaccard of the node's child sets.

        Compared over the trees that contain the node (the paper compares
        children of reoccurring nodes); single-occurrence nodes score 1.
        """
        child_sets = [view.children for view in self.present_views()]
        return pairwise_mean_jaccard(child_sets)

    def parent_similarity(self) -> float:
        """Pairwise-mean Jaccard of the node's parent across *all* trees.

        Trees missing the node contribute an empty parent set, exactly as
        in the paper's Appendix D example (node *e*: (1+0+0)/3 = .3).
        Pairs in which *both* trees miss the node carry no information
        about the parent and are skipped — otherwise a node observed in a
        single profile would score J(∅, ∅) = 1 against every other absent
        tree and look deceptively stable.
        """
        parent_sets = [
            frozenset([view.parent_key]) if view is not None and view.parent_key is not None
            else frozenset()
            for view in self.views
        ]
        values = []
        for i in range(len(parent_sets)):
            for j in range(i + 1, len(parent_sets)):
                if not parent_sets[i] and not parent_sets[j]:
                    continue
                values.append(jaccard(parent_sets[i], parent_sets[j]))
        if not values:
            return 1.0
        return sum(values) / len(values)

    def parent_similarity_present_only(self) -> float:
        """Parent similarity restricted to trees containing the node."""
        parent_sets = [
            frozenset([view.parent_key]) if view.parent_key is not None else frozenset()
            for view in self.present_views()
        ]
        return pairwise_mean_jaccard(parent_sets)

    def same_parent_everywhere(self) -> bool:
        parents = {view.parent_key for view in self.present_views()}
        return len(parents) == 1

    # -- dependency chains -------------------------------------------------------

    def chains(self) -> List[Tuple[str, ...]]:
        return [view.chain for view in self.present_views()]

    def same_chain_everywhere(self) -> bool:
        """Identical dependency chain in every tree containing the node."""
        chains = self.chains()
        return len(set(chains)) == 1

    def unique_chain_count(self) -> int:
        """How many of the node's chains occur in exactly one tree."""
        chains = self.chains()
        return sum(1 for chain in set(chains) if chains.count(chain) == 1)


class PageComparison:
    """All five trees of one page, aligned by node key."""

    def __init__(self, trees: Mapping[str, DependencyTree]) -> None:
        if not trees:
            raise AnalysisError("PageComparison needs at least one tree")
        self.profiles: Tuple[str, ...] = tuple(sorted(trees))
        self.trees: Dict[str, DependencyTree] = {name: trees[name] for name in self.profiles}
        pages = {tree.page_url for tree in self.trees.values()}
        if len(pages) != 1:
            raise AnalysisError(f"trees belong to different pages: {sorted(pages)}")
        self.page_url = next(iter(pages))
        self._nodes: Dict[str, NodeComparison] = self._align()

    # -- alignment -----------------------------------------------------------

    def _align(self) -> Dict[str, NodeComparison]:
        views_by_key: Dict[str, List[Optional[NodeView]]] = {}
        profile_count = len(self.profiles)
        for index, profile in enumerate(self.profiles):
            tree = self.trees[profile]
            for node in tree.nodes():
                slot = views_by_key.setdefault(node.key, [None] * profile_count)
                slot[index] = NodeView(
                    depth=node.depth,
                    parent_key=node.parent_key(),
                    children=frozenset(node.child_keys()),
                    resource_type=node.resource_type,
                    is_third_party=node.is_third_party,
                    is_tracking=node.is_tracking,
                    chain=node.chain(),
                    during_interaction=node.during_interaction,
                )
        return {
            key: NodeComparison(key=key, views=tuple(views))
            for key, views in views_by_key.items()
        }

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, key: str) -> Optional[NodeComparison]:
        return self._nodes.get(key)

    def nodes(self) -> List[NodeComparison]:
        return list(self._nodes.values())

    def keys(self) -> List[str]:
        return list(self._nodes)

    def tree_list(self) -> List[DependencyTree]:
        return [self.trees[profile] for profile in self.profiles]

    # -- page-level measures ---------------------------------------------------

    def depth_similarity(
        self,
        depth: int,
        keys_filter=None,
    ) -> Optional[float]:
        """Pairwise-mean Jaccard of the per-tree node sets at ``depth``.

        ``keys_filter(node_comparison) -> bool`` restricts the node
        universe (e.g. only first-party nodes).  Returns ``None`` when no
        tree has nodes at this depth after filtering.
        """
        sets: List[FrozenSet[str]] = []
        for profile in self.profiles:
            keys = set()
            for node in self.trees[profile].nodes_at_depth(depth):
                comparison = self._nodes[node.key]
                if keys_filter is not None and not keys_filter(comparison):
                    continue
                keys.add(node.key)
            sets.append(frozenset(keys))
        if all(not s for s in sets):
            return None
        return pairwise_mean_jaccard(sets)

    def max_depth(self) -> int:
        return max(tree.max_depth for tree in self.trees.values())

    def depth_one_similarity(self) -> float:
        """The horizontal entry point: similarity of depth-one node sets."""
        result = self.depth_similarity(1)
        return result if result is not None else 1.0

    def whole_tree_similarity(self) -> float:
        """Pairwise-mean Jaccard over *all* node keys per tree.

        Appendix D's "index for all nodes in all trees" — also the basis
        for the whole-tree ablation the paper argues against (§3.2).
        """
        return pairwise_mean_jaccard(
            [frozenset(tree.keys()) for tree in self.tree_list()]
        )

    def pairwise_tree_similarity(self, profile_a: str, profile_b: str) -> float:
        """Jaccard of all node keys between two specific profiles."""
        return jaccard(
            frozenset(self.trees[profile_a].keys()),
            frozenset(self.trees[profile_b].keys()),
        )
