"""Similarity categories (paper §3.2, following Demir et al. 2022).

Scores are bucketed for interpretation: **high** (sim ≥ .8), **medium**
(.3 ≤ sim < .8), and **low** (sim < .3).
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Dict, Sequence


class SimilarityCategory(enum.Enum):
    """The three interpretation buckets."""

    HIGH = "high"
    MEDIUM = "med."
    LOW = "low"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


HIGH_THRESHOLD = 0.8
MEDIUM_THRESHOLD = 0.3


def categorize(similarity: float) -> SimilarityCategory:
    """Bucket one similarity score."""
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity out of range: {similarity}")
    if similarity >= HIGH_THRESHOLD:
        return SimilarityCategory.HIGH
    if similarity >= MEDIUM_THRESHOLD:
        return SimilarityCategory.MEDIUM
    return SimilarityCategory.LOW


def category_shares(similarities: Sequence[float]) -> Dict[SimilarityCategory, float]:
    """Relative share of each category in a score collection.

    Used for statements like "63% of the parents show high similarity,
    17% medium, and 20% low" (§4.2).
    """
    if not similarities:
        return {category: 0.0 for category in SimilarityCategory}
    counts = Counter(categorize(value) for value in similarities)
    total = len(similarities)
    return {category: counts.get(category, 0) / total for category in SimilarityCategory}
