"""Within- vs. between-setup variance decomposition (paper §4.4, §8).

The paper's striking §4.4 result is that even *identical* setups produce
different trees — part of the observed variance is the Web's own noise,
not the setup's bias.  With repeated measurements per profile
(``Commander(repeat_visits=k)``) the two sources can be separated:

* **within-setup similarity** — pairwise tree similarity between repeated
  visits of the same page by the *same* profile (the Web's noise floor);
* **between-setup similarity** — pairwise similarity between visits of the
  same page by *different* profiles (noise floor + setup bias);
* **setup effect** — the gap between the two: how much of the observed
  difference is actually attributable to the setup.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..blocklist.matcher import FilterList
from ..crawler.storage import MeasurementStore
from ..stats.descriptive import Summary, safe_mean, summarize
from ..stats.nonparametric import TestResult, mann_whitney_u
from ..trees.builder import TreeBuilder
from .jaccard import jaccard


@dataclass(frozen=True)
class ReplicationReport:
    """The variance decomposition over a repeated-measurement crawl."""

    pages: int
    within: Summary
    between: Summary
    per_profile_within: Dict[str, float]
    significance: Optional[TestResult]

    @property
    def setup_effect(self) -> float:
        """Similarity lost to the setup beyond the Web's own noise."""
        return self.within.mean - self.between.mean

    @property
    def noise_share(self) -> float:
        """Fraction of the total dissimilarity explained by Web noise.

        ``(1 - within) / (1 - between)``: 1.0 means the setup adds nothing
        beyond the noise floor; small values mean the setup dominates.
        """
        between_dissimilarity = 1.0 - self.between.mean
        if between_dissimilarity <= 0:
            return 1.0
        return min(1.0, (1.0 - self.within.mean) / between_dissimilarity)


class ReplicationAnalyzer:
    """Decomposes variance from a crawl with ``repeat_visits >= 2``."""

    def __init__(self, filter_list: Optional[FilterList] = None) -> None:
        self.filter_list = filter_list

    def analyze(
        self, store: MeasurementStore, profiles: Sequence[str]
    ) -> ReplicationReport:
        builder = TreeBuilder(filter_list=self.filter_list)
        within_values: List[float] = []
        between_values: List[float] = []
        per_profile: Dict[str, List[float]] = defaultdict(list)
        pages = 0
        for page_url in store.pages():
            # All successful visits per profile (possibly several).
            visits_by_profile: Dict[str, List[int]] = defaultdict(list)
            for visit in store.visits_for_page(page_url):
                if visit.success and visit.profile_name in profiles:
                    visits_by_profile[visit.profile_name].append(visit.visit_id)
            if any(len(ids) < 2 for ids in visits_by_profile.values()):
                continue
            if len(visits_by_profile) < 2:
                continue
            pages += 1
            key_sets: Dict[Tuple[str, int], frozenset] = {}
            for profile, visit_ids in visits_by_profile.items():
                for visit_id in visit_ids:
                    visit = store.visit(visit_id)
                    tree = builder.build(visit, store.requests_for_visit(visit_id))
                    key_sets[(profile, visit_id)] = frozenset(tree.keys())
            keys = list(key_sets)
            for i in range(len(keys)):
                for j in range(i + 1, len(keys)):
                    (profile_a, _), (profile_b, _) = keys[i], keys[j]
                    value = jaccard(key_sets[keys[i]], key_sets[keys[j]])
                    if profile_a == profile_b:
                        within_values.append(value)
                        per_profile[profile_a].append(value)
                    else:
                        between_values.append(value)
        if not within_values or not between_values:
            raise ValueError(
                "replication analysis needs repeat_visits >= 2 and >= 2 profiles"
            )
        significance: Optional[TestResult] = None
        if len(within_values) >= 3 and len(between_values) >= 3:
            significance = mann_whitney_u(within_values, between_values)
        return ReplicationReport(
            pages=pages,
            within=summarize(within_values),
            between=summarize(between_values),
            per_profile_within={
                profile: safe_mean(values) for profile, values in sorted(per_profile.items())
            },
            significance=significance,
        )
