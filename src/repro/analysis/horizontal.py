"""Horizontal tree analysis: comparing siblings (paper §3.2, Appendix D).

The horizontal pass starts at depth one of each page's trees — the
elements directly loaded by the page — and computes the pairwise-mean
Jaccard of those node sets.  It then recurses: for every node that recurs
in at least two trees with at least one child, the children sets are
compared, and the recursion continues into children that again recur,
until no node recurs in two or more profiles.

Unless stated otherwise, depth-one nodes that *cannot* dynamically load
additional content (images, fonts, plain media) are excluded — including
them would report perfect similarity for branches that cannot possibly
differ, under-reporting the Web's dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set

from ..web.resources import ResourceType
from .comparison import NodeComparison, PageComparison
from .dataset import AnalysisDataset


@dataclass(frozen=True)
class ChildSimilarityRecord:
    """Child-set similarity of one recurring node on one page."""

    page_url: str
    key: str
    depth: int
    resource_type: ResourceType
    is_third_party: bool
    is_tracking: bool
    presence_count: int
    similarity: float
    mean_child_count: float


@dataclass(frozen=True)
class HorizontalResult:
    """Everything the horizontal pass produced for one page."""

    page_url: str
    depth_one_similarity: float
    records: List[ChildSimilarityRecord]

    def similarities(self) -> List[float]:
        return [record.similarity for record in self.records]


def exclude_static_leaf(node: NodeComparison) -> bool:
    """The paper's default filter: drop depth-one nodes that cannot load
    children (text, images, ...) — they would fake perfect similarity."""
    if node.min_depth == 1 and not node.resource_type.can_load_children:
        return False
    return True


class HorizontalAnalyzer:
    """Runs the recursive horizontal comparison."""

    def __init__(self, include_static_leaves: bool = False) -> None:
        self.include_static_leaves = include_static_leaves

    # -- per page ------------------------------------------------------------

    def analyze_page(self, comparison: PageComparison) -> HorizontalResult:
        """The horizontal pass for one page's aligned trees."""
        depth_one = self._depth_one_similarity(comparison)
        records: List[ChildSimilarityRecord] = []
        visited: Set[str] = set()
        # Recursion frontier: depth-one nodes that recur in >= 2 trees.
        frontier = [
            node
            for node in comparison.nodes()
            if node.min_depth == 1 and node.presence_count >= 2
        ]
        while frontier:
            next_frontier: List[NodeComparison] = []
            for node in frontier:
                if node.key in visited:
                    continue
                visited.add(node.key)
                if not self.include_static_leaves and not exclude_static_leaf(node):
                    continue
                if not self._has_any_child(node):
                    continue
                record = self._record_for(comparison, node)
                records.append(record)
                for child_key in self._recurring_children(comparison, node):
                    child = comparison.node(child_key)
                    if child is not None and child.presence_count >= 2:
                        next_frontier.append(child)
            frontier = next_frontier
        return HorizontalResult(
            page_url=comparison.page_url,
            depth_one_similarity=depth_one,
            records=records,
        )

    # -- across the dataset ----------------------------------------------------

    def analyze(self, dataset: AnalysisDataset) -> Iterator[HorizontalResult]:
        for entry in dataset:
            yield self.analyze_page(entry.comparison)

    def all_records(self, dataset: AnalysisDataset) -> List[ChildSimilarityRecord]:
        records: List[ChildSimilarityRecord] = []
        for result in self.analyze(dataset):
            records.extend(result.records)
        return records

    # -- internals ---------------------------------------------------------------

    def _depth_one_similarity(self, comparison: PageComparison) -> float:
        keys_filter = None if self.include_static_leaves else exclude_static_leaf
        result = comparison.depth_similarity(1, keys_filter=keys_filter)
        return result if result is not None else 1.0

    @staticmethod
    def _has_any_child(node: NodeComparison) -> bool:
        return any(view.child_count > 0 for view in node.present_views())

    @staticmethod
    def _record_for(
        comparison: PageComparison, node: NodeComparison
    ) -> ChildSimilarityRecord:
        views = node.present_views()
        return ChildSimilarityRecord(
            page_url=comparison.page_url,
            key=node.key,
            depth=node.min_depth,
            resource_type=node.resource_type,
            is_third_party=node.is_third_party,
            is_tracking=node.is_tracking,
            presence_count=node.presence_count,
            similarity=node.child_similarity(),
            mean_child_count=sum(view.child_count for view in views) / len(views),
        )

    @staticmethod
    def _recurring_children(
        comparison: PageComparison, node: NodeComparison
    ) -> Set[str]:
        """Children of ``node`` that occur in at least two trees."""
        counts: dict = {}
        for view in node.present_views():
            for child_key in view.children:
                counts[child_key] = counts.get(child_key, 0) + 1
        return {key for key, count in counts.items() if count >= 2}


def page_child_similarity(comparison: PageComparison) -> Optional[float]:
    """The page-average child similarity (used by Figure 5b).

    Mean over recurring nodes with at least one child; ``None`` when the
    page has no such node.
    """
    result = HorizontalAnalyzer().analyze_page(comparison)
    values = result.similarities()
    return sum(values) / len(values) if values else None
