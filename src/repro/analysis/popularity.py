"""Site-popularity effects (paper Appendix F, Table 7).

Do popular sites behave differently?  The paper buckets sites by Tranco
rank, compares tree sizes and child/parent similarities per bucket, and
finds larger trees at the top of the list but practically identical
similarities (Kruskal-Wallis significant, ε² = .002 — negligible).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..crawler.tranco import PAPER_BUCKETS, RankBucket, bucket_for_rank
from ..stats.descriptive import safe_mean
from ..stats.effect_size import epsilon_squared
from ..stats.nonparametric import TestResult, kruskal_wallis
from .dataset import AnalysisDataset
from .horizontal import page_child_similarity
from .vertical import page_parent_similarity


@dataclass(frozen=True)
class BucketRow:
    """One row of Table 7."""

    bucket: RankBucket
    page_count: int
    mean_nodes: float
    child_similarity: float
    parent_similarity: float


@dataclass(frozen=True)
class PopularityReport:
    """Table 7 plus the significance/effect-size verdict."""

    rows: List[BucketRow]
    nodes_test: Optional[TestResult]
    similarity_test: Optional[TestResult]
    similarity_effect_size: Optional[float]


class PopularityAnalyzer:
    """Bucket-level comparison by site rank."""

    def __init__(self, buckets: Sequence[RankBucket] = PAPER_BUCKETS) -> None:
        self.buckets = tuple(buckets)

    def analyze(self, dataset: AnalysisDataset) -> PopularityReport:
        nodes_by_bucket: Dict[str, List[float]] = defaultdict(list)
        child_by_bucket: Dict[str, List[float]] = defaultdict(list)
        parent_by_bucket: Dict[str, List[float]] = defaultdict(list)
        pages_by_bucket: Dict[str, int] = defaultdict(int)
        for entry in dataset:
            bucket = bucket_for_rank(entry.site_rank, self.buckets)
            comparison = entry.comparison
            pages_by_bucket[bucket.name] += 1
            total_nodes = sum(tree.node_count for tree in comparison.tree_list())
            nodes_by_bucket[bucket.name].append(total_nodes / len(comparison.profiles))
            child = page_child_similarity(comparison)
            if child is not None:
                child_by_bucket[bucket.name].append(child)
            parent = page_parent_similarity(comparison)
            if parent is not None:
                parent_by_bucket[bucket.name].append(parent)
        rows = [
            BucketRow(
                bucket=bucket,
                page_count=pages_by_bucket.get(bucket.name, 0),
                mean_nodes=safe_mean(nodes_by_bucket.get(bucket.name, [])),
                child_similarity=safe_mean(child_by_bucket.get(bucket.name, [])),
                parent_similarity=safe_mean(parent_by_bucket.get(bucket.name, [])),
            )
            for bucket in self.buckets
            if pages_by_bucket.get(bucket.name, 0) > 0
        ]
        nodes_test, similarity_test, effect = self._tests(
            nodes_by_bucket, child_by_bucket
        )
        return PopularityReport(
            rows=rows,
            nodes_test=nodes_test,
            similarity_test=similarity_test,
            similarity_effect_size=effect,
        )

    def _tests(
        self,
        nodes_by_bucket: Dict[str, List[float]],
        child_by_bucket: Dict[str, List[float]],
    ) -> Tuple[Optional[TestResult], Optional[TestResult], Optional[float]]:
        node_groups = [values for values in nodes_by_bucket.values() if len(values) >= 2]
        child_groups = [values for values in child_by_bucket.values() if len(values) >= 2]
        nodes_test = kruskal_wallis(*node_groups) if len(node_groups) >= 2 else None
        similarity_test = (
            kruskal_wallis(*child_groups) if len(child_groups) >= 2 else None
        )
        effect = None
        if similarity_test is not None:
            n_total = sum(len(values) for values in child_groups)
            effect = epsilon_squared(similarity_test.statistic, n_total)
        return nodes_test, similarity_test, effect
