"""Jaccard similarity and its pairwise-mean extension (paper §3.2).

``J(A, B) = |A ∩ B| / |A ∪ B|`` gauges the similarity of two sets; to
compare the five per-profile sets of a page, the paper computes the
pairwise similarity between all sets and reports the arithmetic mean.
Appendix D works a concrete example, which the test suite reproduces
exactly.
"""

from __future__ import annotations

from itertools import combinations
from typing import AbstractSet, Sequence, TypeVar

T = TypeVar("T")

#: By convention two empty sets are identical: J(∅, ∅) = 1.  The paper
#: sidesteps this case by excluding childless depth-one nodes, but the
#: recursive comparison still reaches pairs of empty child sets.
EMPTY_EQUAL = 1.0


def jaccard(set_a: AbstractSet[T], set_b: AbstractSet[T]) -> float:
    """The Jaccard index of two sets (1 = equal, 0 = disjoint)."""
    if not set_a and not set_b:
        return EMPTY_EQUAL
    union = len(set_a | set_b)
    if union == 0:
        return EMPTY_EQUAL
    return len(set_a & set_b) / union


def pairwise_mean_jaccard(sets: Sequence[AbstractSet[T]]) -> float:
    """Mean Jaccard index over all unordered pairs of ``sets``.

    This is the paper's page-level similarity score for five profiles.
    A single set compares to nothing and scores 1 by definition.
    """
    if not sets:
        raise ValueError("need at least one set")
    if len(sets) == 1:
        return 1.0
    pairs = list(combinations(sets, 2))
    return sum(jaccard(a, b) for a, b in pairs) / len(pairs)


def pairwise_jaccard_matrix(sets: Sequence[AbstractSet[T]]) -> list:
    """The full symmetric similarity matrix (diagonal = 1)."""
    size = len(sets)
    matrix = [[1.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(i + 1, size):
            value = jaccard(sets[i], sets[j])
            matrix[i][j] = value
            matrix[j][i] = value
    return matrix


def overlap_count(sets: Sequence[AbstractSet[T]], element: T) -> int:
    """In how many of ``sets`` does ``element`` occur?"""
    return sum(1 for s in sets if element in s)
