"""First- vs. third-party context analysis (paper §4.3).

First-party resources are controlled by the site operator and embed
stably; third-party content — ads, trackers, widgets — rotates, chains,
and dominates the deep tree levels.  This module quantifies both sides:
node shares, per-depth dominance, presence across profiles, child
similarity, and the fan-out comparison (children and HTTP requests).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..stats.descriptive import Summary, safe_mean, summarize
from .dataset import AnalysisDataset


@dataclass(frozen=True)
class PartyProfileStats:
    """§4.3 statistics for one loading context (first or third party)."""

    node_share: float
    depth_one_presence_mean: float
    deeper_presence_mean: float
    child_similarity: Optional[Summary]
    mean_children_per_node: float
    mean_requests_per_node: float
    distinct_domains: int


@dataclass(frozen=True)
class PartyComparisonResult:
    """Both contexts side by side, plus the derived contrasts."""

    first_party: PartyProfileStats
    third_party: PartyProfileStats

    @property
    def children_increase(self) -> float:
        """Relative increase of third-party children over first-party."""
        fp = self.first_party.mean_children_per_node
        if fp == 0:
            return 0.0
        return (self.third_party.mean_children_per_node - fp) / fp

    @property
    def requests_increase(self) -> float:
        fp = self.first_party.mean_requests_per_node
        if fp == 0:
            return 0.0
        return (self.third_party.mean_requests_per_node - fp) / fp


class PartyAnalyzer:
    """Computes the §4.3 first-/third-party breakdown."""

    def analyze(self, dataset: AnalysisDataset, deeper_than: int = 1) -> PartyComparisonResult:
        return PartyComparisonResult(
            first_party=self._stats(dataset, third_party=False, deeper_than=deeper_than),
            third_party=self._stats(dataset, third_party=True, deeper_than=deeper_than),
        )

    def party_share_by_depth(self, dataset: AnalysisDataset, combine_after: int = 6) -> Dict[int, float]:
        """Depth → share of third-party tree nodes (dominance check)."""
        first: Dict[int, int] = defaultdict(int)
        third: Dict[int, int] = defaultdict(int)
        for entry in dataset:
            for tree in entry.comparison.tree_list():
                for node in tree.nodes(include_root=True):
                    bucket = min(node.depth, combine_after)
                    if node.is_third_party:
                        third[bucket] += 1
                    else:
                        first[bucket] += 1
        return {
            depth: third.get(depth, 0) / (third.get(depth, 0) + first.get(depth, 0))
            for depth in sorted(set(first) | set(third))
            if third.get(depth, 0) + first.get(depth, 0) > 0
        }

    # -- internals ------------------------------------------------------------

    def _stats(
        self, dataset: AnalysisDataset, third_party: bool, deeper_than: int
    ) -> PartyProfileStats:
        total_nodes = 0
        matching_nodes = 0
        depth_one_presence: List[float] = []
        deeper_presence: List[float] = []
        child_similarities: List[float] = []
        children_counts: List[float] = []
        request_counts: List[float] = []
        domains: set = set()
        for node in dataset.iter_nodes():
            total_nodes += 1
            if node.is_third_party != third_party:
                continue
            matching_nodes += 1
            if node.min_depth == 1:
                depth_one_presence.append(node.presence_count)
            elif node.min_depth > deeper_than:
                deeper_presence.append(node.presence_count)
            views = node.present_views()
            if any(view.child_count > 0 for view in views):
                child_similarities.append(node.child_similarity())
            children_counts.append(sum(view.child_count for view in views) / len(views))
        for entry in dataset:
            for tree in entry.comparison.tree_list():
                for tree_node in tree.nodes():
                    if tree_node.is_third_party != third_party:
                        continue
                    request_counts.append(float(len(tree_node.request_ids)))
                    if third_party and tree_node.site is not None:
                        domains.add(tree_node.site)
        return PartyProfileStats(
            node_share=matching_nodes / total_nodes if total_nodes else 0.0,
            depth_one_presence_mean=safe_mean(depth_one_presence),
            deeper_presence_mean=safe_mean(deeper_presence),
            child_similarity=(
                summarize(child_similarities) if child_similarities else None
            ),
            mean_children_per_node=safe_mean(children_counts),
            mean_requests_per_node=safe_mean(request_counts),
            distinct_domains=len(domains),
        )
