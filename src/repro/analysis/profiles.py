"""Setup implications: per-profile totals and pairwise comparisons
(paper §4.4, Tables 5 and 6).

Table 5 summarizes each profile's measured trees (nodes, third-party
nodes, trackers, max depth/breadth).  Table 6 compares every profile
against the reference profile Sim1: the share of nodes whose children
(or parent) are *perfectly* similar (Jaccard 1) or *not at all* similar
(Jaccard 0), split by loading context, plus mean dependency similarities.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import AnalysisError
from ..stats.descriptive import ratio, safe_mean
from ..stats.nonparametric import TestResult, mann_whitney_u
from .dataset import AnalysisDataset
from .jaccard import jaccard


@dataclass(frozen=True)
class ProfileTreeTotals:
    """One row of Table 5."""

    profile: str
    nodes: int
    third_party: int
    tracker: int
    max_depth: int
    max_breadth: int


@dataclass(frozen=True)
class PairwiseShare:
    """Perfect/zero similarity shares for one metric of one profile pair."""

    perfect: float
    none: float
    node_count: int


@dataclass(frozen=True)
class ProfilePairComparison:
    """One column of Table 6: ``other`` compared against the reference."""

    reference: str
    other: str
    fp_children: PairwiseShare
    tp_children: PairwiseShare
    fp_parent: PairwiseShare
    tp_parent: PairwiseShare
    parent_similarity_mean: float  # nodes at depth >= 2
    child_similarity_mean: float  # nodes with >= 1 child


class ProfileAnalyzer:
    """Computes Tables 5/6 and the §4.4 profile contrasts."""

    # -- Table 5 -----------------------------------------------------------------

    def totals(self, dataset: AnalysisDataset) -> List[ProfileTreeTotals]:
        nodes: Dict[str, int] = defaultdict(int)
        third: Dict[str, int] = defaultdict(int)
        tracker: Dict[str, int] = defaultdict(int)
        depth: Dict[str, int] = defaultdict(int)
        breadth: Dict[str, int] = defaultdict(int)
        for entry in dataset:
            comparison = entry.comparison
            for profile in comparison.profiles:
                tree = comparison.trees[profile]
                nodes[profile] += tree.node_count
                third[profile] += len(tree.third_party_nodes())
                tracker[profile] += len(tree.tracking_nodes())
                depth[profile] = max(depth[profile], tree.max_depth)
                breadth[profile] = max(breadth[profile], tree.breadth)
        return [
            ProfileTreeTotals(
                profile=profile,
                nodes=nodes[profile],
                third_party=third[profile],
                tracker=tracker[profile],
                max_depth=depth[profile],
                max_breadth=breadth[profile],
            )
            for profile in dataset.profiles
        ]

    # -- Table 6 -----------------------------------------------------------------

    def compare_pair(
        self, dataset: AnalysisDataset, reference: str, other: str
    ) -> ProfilePairComparison:
        """Compare ``other`` against ``reference`` (Table 6 column)."""
        if reference not in dataset.profiles or other not in dataset.profiles:
            raise AnalysisError(f"unknown profiles: {reference!r} vs {other!r}")
        shares = {
            ("fp", "children"): [0, 0, 0],
            ("tp", "children"): [0, 0, 0],
            ("fp", "parent"): [0, 0, 0],
            ("tp", "parent"): [0, 0, 0],
        }
        parent_sims: List[float] = []
        child_sims: List[float] = []
        for entry in dataset:
            comparison = entry.comparison
            ref_index = comparison.profiles.index(reference)
            other_index = comparison.profiles.index(other)
            for node in comparison.nodes():
                ref_view = node.views[ref_index]
                other_view = node.views[other_index]
                if ref_view is None or other_view is None:
                    continue
                party = "tp" if node.is_third_party else "fp"
                child_j = jaccard(ref_view.children, other_view.children)
                if ref_view.child_count > 0 or other_view.child_count > 0:
                    _tally(shares[(party, "children")], child_j)
                    child_sims.append(child_j)
                parent_j = 1.0 if ref_view.parent_key == other_view.parent_key else 0.0
                _tally(shares[(party, "parent")], parent_j)
                if min(ref_view.depth, other_view.depth) >= 2:
                    parent_sims.append(parent_j)
        return ProfilePairComparison(
            reference=reference,
            other=other,
            fp_children=_share(shares[("fp", "children")]),
            tp_children=_share(shares[("tp", "children")]),
            fp_parent=_share(shares[("fp", "parent")]),
            tp_parent=_share(shares[("tp", "parent")]),
            parent_similarity_mean=safe_mean(parent_sims),
            child_similarity_mean=safe_mean(child_sims),
        )

    def table6(
        self, dataset: AnalysisDataset, reference: str = "Sim1"
    ) -> List[ProfilePairComparison]:
        """All Table 6 columns: every other profile vs. the reference."""
        return [
            self.compare_pair(dataset, reference, other)
            for other in dataset.profiles
            if other != reference
        ]

    # -- identical-setup comparison (§4.4) -------------------------------------------

    def same_configuration_similarity(
        self,
        dataset: AnalysisDataset,
        profile_a: str = "Sim1",
        profile_b: str = "Sim2",
        upper_depth: int = 5,
    ) -> Tuple[float, float]:
        """(upper-level, deeper-level) mean Jaccard between two profiles.

        Per page and per depth, the node sets of both profiles are
        compared; depths ≤ ``upper_depth`` aggregate into the first value.
        """
        upper: List[float] = []
        deeper: List[float] = []
        for entry in dataset:
            comparison = entry.comparison
            tree_a = comparison.trees.get(profile_a)
            tree_b = comparison.trees.get(profile_b)
            if tree_a is None or tree_b is None:
                continue
            max_depth = max(tree_a.max_depth, tree_b.max_depth)
            for depth in range(1, max_depth + 1):
                keys_a = tree_a.keys_at_depth(depth)
                keys_b = tree_b.keys_at_depth(depth)
                if not keys_a and not keys_b:
                    continue
                value = jaccard(frozenset(keys_a), frozenset(keys_b))
                (upper if depth <= upper_depth else deeper).append(value)
        return safe_mean(upper, default=1.0), safe_mean(deeper, default=1.0)

    # -- interaction effect (§4.4) ------------------------------------------------------

    def interaction_effect(
        self,
        dataset: AnalysisDataset,
        interactive: str = "Sim1",
        noaction: str = "NoAction",
    ) -> Dict[str, float]:
        """Relative node/third-party/children differences Sim1 vs NoAction."""
        totals = {row.profile: row for row in self.totals(dataset)}
        sim = totals[interactive]
        noact = totals[noaction]
        children_sim: List[float] = []
        children_noact: List[float] = []
        for entry in dataset:
            comparison = entry.comparison
            for profile, bucket in ((interactive, children_sim), (noaction, children_noact)):
                tree = comparison.trees.get(profile)
                if tree is None:
                    continue
                for node in tree.nodes():
                    bucket.append(float(len(node.children)))
        return {
            "node_increase": ratio(sim.nodes - noact.nodes, noact.nodes),
            "third_party_increase": ratio(sim.third_party - noact.third_party, noact.third_party),
            "children_per_node_change": (
                ratio(
                    safe_mean(children_sim) - safe_mean(children_noact),
                    safe_mean(children_noact),
                )
                if children_noact
                else 0.0
            ),
        }

    def interaction_depth_test(
        self, dataset: AnalysisDataset, interactive: str = "Sim1", noaction: str = "NoAction"
    ) -> TestResult:
        """Mann-Whitney U on node depths: interaction vs. no interaction."""
        depths_interactive: List[float] = []
        depths_noaction: List[float] = []
        for entry in dataset:
            comparison = entry.comparison
            for profile, bucket in (
                (interactive, depths_interactive),
                (noaction, depths_noaction),
            ):
                tree = comparison.trees.get(profile)
                if tree is None:
                    continue
                bucket.extend(float(node.depth) for node in tree.nodes())
        if not depths_interactive or not depths_noaction:
            raise AnalysisError("profiles missing from dataset for depth test")
        return mann_whitney_u(depths_interactive, depths_noaction)


def _tally(counter: List[int], value: float) -> None:
    counter[2] += 1
    if value >= 1.0:
        counter[0] += 1
    elif value <= 0.0:
        counter[1] += 1


def _share(counter: List[int]) -> PairwiseShare:
    total = counter[2]
    return PairwiseShare(
        perfect=counter[0] / total if total else 0.0,
        none=counter[1] / total if total else 0.0,
        node_count=total,
    )
