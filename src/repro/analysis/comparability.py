"""Cross-study comparability (the paper's motivating question).

Given *two measurement runs* — different points in time, different
crawlers, or different configurations — would their published conclusions
agree?  The paper argues this is the community's blind spot; this module
makes the comparison concrete for the most-published quantities:

* **tracking prevalence** — the tracking-node share each study reports;
* **per-site tracker ranking** — Spearman rank correlation of tracker
  counts over the sites both studies crawled;
* **top-tracker lists** — Jaccard overlap of the top-k tracker domains
  each study would name;
* **site coverage** — how much of each other's site set the studies share.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..stats.descriptive import ratio
from ..stats.nonparametric import spearman_rho
from .dataset import AnalysisDataset
from .jaccard import jaccard


@dataclass(frozen=True)
class StudySummary:
    """The publishable headline numbers of one measurement run."""

    name: str
    pages: int
    sites: int
    tracking_share: float
    trackers_per_site: Dict[str, float]
    top_trackers: Tuple[str, ...]


@dataclass(frozen=True)
class ComparabilityReport:
    """How far two studies' conclusions agree."""

    study_a: StudySummary
    study_b: StudySummary
    common_sites: int
    tracking_share_gap: float
    per_site_rank_correlation: Optional[float]
    top_tracker_overlap: float

    @property
    def comparable(self) -> bool:
        """A pragmatic verdict: conclusions broadly agree.

        Thresholds follow the paper's similarity categories: high list
        overlap, small prevalence gap, and — when enough common sites
        exist for ranks to be meaningful (>= 8) — correlated rankings.
        """
        rank_ok = (
            self.per_site_rank_correlation is None
            or self.common_sites < 8
            or self.per_site_rank_correlation >= 0.5
        )
        return (
            self.tracking_share_gap < 0.1
            and self.top_tracker_overlap >= 0.5
            and rank_ok
        )


class StudyComparator:
    """Summarizes runs and compares their would-be conclusions."""

    def __init__(self, top_k: int = 5) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.top_k = top_k

    # -- summaries ------------------------------------------------------------

    def summarize(self, name: str, dataset: AnalysisDataset) -> StudySummary:
        """The headline numbers a single-run study would publish."""
        total_nodes = 0
        tracking_nodes = 0
        trackers_per_site: Dict[str, List[int]] = defaultdict(list)
        tracker_domains: Counter = Counter()
        for entry in dataset:
            page_tracker_count = 0
            for node in entry.comparison.nodes():
                total_nodes += 1
                if node.is_tracking:
                    tracking_nodes += 1
                    page_tracker_count += 1
                    site = _site_of_key(node.key)
                    if site:
                        tracker_domains[site] += 1
            trackers_per_site[entry.site].append(page_tracker_count)
        return StudySummary(
            name=name,
            pages=len(dataset),
            sites=len(trackers_per_site),
            tracking_share=ratio(tracking_nodes, total_nodes),
            trackers_per_site={
                site: sum(values) / len(values)
                for site, values in trackers_per_site.items()
            },
            top_trackers=tuple(
                domain for domain, _ in tracker_domains.most_common(self.top_k)
            ),
        )

    # -- comparison --------------------------------------------------------------

    def compare(
        self, study_a: StudySummary, study_b: StudySummary
    ) -> ComparabilityReport:
        common = sorted(
            set(study_a.trackers_per_site) & set(study_b.trackers_per_site)
        )
        correlation: Optional[float] = None
        if len(common) >= 3:
            values_a = [study_a.trackers_per_site[site] for site in common]
            values_b = [study_b.trackers_per_site[site] for site in common]
            correlation = spearman_rho(values_a, values_b)
        return ComparabilityReport(
            study_a=study_a,
            study_b=study_b,
            common_sites=len(common),
            tracking_share_gap=abs(study_a.tracking_share - study_b.tracking_share),
            per_site_rank_correlation=correlation,
            top_tracker_overlap=jaccard(
                set(study_a.top_trackers), set(study_b.top_trackers)
            ),
        )

    def compare_datasets(
        self,
        name_a: str,
        dataset_a: AnalysisDataset,
        name_b: str,
        dataset_b: AnalysisDataset,
    ) -> ComparabilityReport:
        """Summarize and compare in one step."""
        return self.compare(
            self.summarize(name_a, dataset_a), self.summarize(name_b, dataset_b)
        )


def _site_of_key(key: str) -> Optional[str]:
    from ..web import psl

    scheme_sep = key.find("://")
    if scheme_sep < 0:
        return None
    host = key[scheme_sep + 3 :]
    for stop in ("/", "?", "#"):
        index = host.find(stop)
        if index >= 0:
            host = host[:index]
    return psl.registrable_domain(host)
