"""Cookie case study (paper §5.2).

Cookies are identified by the RFC 6265 triple (name, domain, path).  The
paper compares, per page, the cookie sets each profile ended up with:
how many cookies appear in all profiles, how many in only one, the mean
Jaccard similarity per page, the contrast between interaction profiles
and NoAction, and the surprising handful of cookies whose *security
attributes* differ across profiles.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..crawler.storage import MeasurementStore
from ..stats.descriptive import Summary, ratio, summarize

CookieIdentity = Tuple[str, str, str]


@dataclass(frozen=True)
class CookieReport:
    """§5.2 headline numbers."""

    total_cookies: int
    cookies_per_profile: Summary
    in_all_profiles_share: float
    in_one_profile_share: float
    page_similarity: Summary
    noaction_similarity: Summary
    attribute_conflicts: int
    noaction_cookie_count: int


class CookieAnalyzer:
    """Cross-profile cookie comparison over a measurement store."""

    def __init__(self, noaction_profile: str = "NoAction") -> None:
        self.noaction_profile = noaction_profile

    def analyze(self, store: MeasurementStore, profiles: Sequence[str]) -> CookieReport:
        pages = store.pages_crawled_by_all(profiles)
        per_profile_counts: Counter = Counter()
        presence: Counter = Counter()
        page_similarities: List[float] = []
        noaction_similarities: List[float] = []
        attribute_signatures: Dict[CookieIdentity, set] = defaultdict(set)
        total = 0
        for page_url in pages:
            visits = store.successful_visits_for_page(page_url, profiles)
            cookie_sets: Dict[str, FrozenSet[CookieIdentity]] = {}
            for profile, visit in visits.items():
                cookies = store.cookies_for_visit(visit.visit_id)
                identities = frozenset(cookie.identity for cookie in cookies)
                cookie_sets[profile] = identities
                per_profile_counts[profile] += len(identities)
                total += len(identities)
                for cookie in cookies:
                    attribute_signatures[cookie.identity].add(
                        (cookie.secure, cookie.http_only, cookie.same_site)
                    )
            page_counter: Counter = Counter()
            for identities in cookie_sets.values():
                for identity in identities:
                    page_counter[identity] += 1
            for identity, count in page_counter.items():
                presence[count] += 1
            page_similarities.append(_pairwise_mean(list(cookie_sets.values())))
            if self.noaction_profile in cookie_sets:
                others = [
                    identities
                    for profile, identities in cookie_sets.items()
                    if profile != self.noaction_profile
                ]
                noaction_set = cookie_sets[self.noaction_profile]
                values = [_jaccard(noaction_set, other) for other in others]
                if values:
                    noaction_similarities.append(sum(values) / len(values))
        distinct = sum(presence.values())
        in_all = presence.get(len(profiles), 0)
        in_one = presence.get(1, 0)
        conflicts = sum(
            1 for signatures in attribute_signatures.values() if len(signatures) > 1
        )
        return CookieReport(
            total_cookies=total,
            cookies_per_profile=summarize(
                [float(per_profile_counts.get(profile, 0)) for profile in profiles]
            ),
            in_all_profiles_share=ratio(in_all, distinct),
            in_one_profile_share=ratio(in_one, distinct),
            page_similarity=(
                summarize(page_similarities) if page_similarities else summarize([0.0])
            ),
            noaction_similarity=(
                summarize(noaction_similarities)
                if noaction_similarities
                else summarize([0.0])
            ),
            attribute_conflicts=conflicts,
            noaction_cookie_count=per_profile_counts.get(self.noaction_profile, 0),
        )


def _jaccard(set_a: FrozenSet, set_b: FrozenSet) -> float:
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    return len(set_a & set_b) / union if union else 1.0


def _pairwise_mean(sets: List[FrozenSet]) -> float:
    if len(sets) < 2:
        return 1.0
    values = []
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            values.append(_jaccard(sets[i], sets[j]))
    return sum(values) / len(values)
