"""Measurement-variance metrics (paper takeaways #1 and #4).

The paper closes with two calls to action: *develop a metric to assess the
potential error/variance of a Web measurement* (§4.4, takeaway 1) and
*use different profiles and multiple measurements to gauge 'randomized'
findings* (takeaway 4).  This module implements both:

* :class:`FluctuationScore` — a per-page measurement-fluctuation index in
  [0, 1] combining node-presence dispersion, child-set instability, and
  parent instability.  0 means every profile saw the same tree; 1 means
  the profiles have (almost) nothing in common.
* :class:`CoverageCurve` — how much of a page's *union* behaviour k
  profiles capture, for k = 1..n: the quantitative answer to "how many
  measurements do I need?".
* :func:`bootstrap_ci` — a nonparametric bootstrap confidence interval for
  any per-page statistic, quantifying the sampling error a study of N
  pages carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, List, Optional, Tuple

from ..rng import child_rng
from ..stats.descriptive import Summary, safe_mean, summarize
from .comparison import PageComparison
from .dataset import AnalysisDataset


@dataclass(frozen=True)
class FluctuationScore:
    """The per-page measurement-fluctuation index and its components.

    ``presence`` — 1 minus the mean share of profiles a node appears in;
    ``children`` — 1 minus the mean child-set similarity of recurring
    nodes; ``parents`` — 1 minus the mean parent similarity.  ``score`` is
    their arithmetic mean; all components live in [0, 1].
    """

    page_url: str
    presence: float
    children: float
    parents: float

    @property
    def score(self) -> float:
        return (self.presence + self.children + self.parents) / 3.0

    def band(self) -> str:
        """A coarse verbal interpretation of the score."""
        if self.score < 0.15:
            return "stable"
        if self.score < 0.35:
            return "moderately fluctuating"
        return "highly fluctuating"


@dataclass(frozen=True)
class CoverageCurve:
    """Expected union coverage by k profiles, for k = 1..n.

    ``coverage[k]`` is the expected fraction of the union of all observed
    node keys that a random k-subset of the profiles captures (averaged
    over all k-subsets).  The curve starts below 1 and must reach 1.0 at
    k = n by construction.
    """

    page_url: str
    coverage: Dict[int, float]

    @property
    def single_profile_coverage(self) -> float:
        return self.coverage[1]

    def profiles_needed(self, target: float) -> Optional[int]:
        """Smallest k whose expected coverage reaches ``target``."""
        for k in sorted(self.coverage):
            if self.coverage[k] >= target:
                return k
        return None


class VarianceAnalyzer:
    """Computes fluctuation scores and coverage curves."""

    # -- fluctuation -----------------------------------------------------------

    def fluctuation(self, comparison: PageComparison) -> FluctuationScore:
        """The fluctuation index of one page."""
        nodes = comparison.nodes()
        profile_count = len(comparison.profiles)
        if not nodes:
            return FluctuationScore(
                page_url=comparison.page_url, presence=0.0, children=0.0, parents=0.0
            )
        presence = 1.0 - safe_mean(
            [node.presence_count / profile_count for node in nodes]
        )
        child_sims = [
            node.child_similarity()
            for node in nodes
            if any(view.child_count > 0 for view in node.present_views())
        ]
        children = 1.0 - safe_mean(child_sims, default=1.0)
        parents = 1.0 - safe_mean([node.parent_similarity() for node in nodes])
        return FluctuationScore(
            page_url=comparison.page_url,
            presence=presence,
            children=children,
            parents=parents,
        )

    def fluctuation_summary(self, dataset: AnalysisDataset) -> Summary:
        """Distribution of the fluctuation index across a dataset."""
        return summarize(
            [self.fluctuation(entry.comparison).score for entry in dataset]
        )

    # -- coverage ---------------------------------------------------------------

    def coverage_curve(self, comparison: PageComparison) -> CoverageCurve:
        """Union coverage by profile-subset size for one page."""
        key_sets = {
            profile: frozenset(tree.keys())
            for profile, tree in comparison.trees.items()
        }
        union = frozenset().union(*key_sets.values())
        profiles = list(key_sets)
        coverage: Dict[int, float] = {}
        if not union:
            return CoverageCurve(
                page_url=comparison.page_url,
                coverage={k: 1.0 for k in range(1, len(profiles) + 1)},
            )
        for k in range(1, len(profiles) + 1):
            shares = [
                len(frozenset().union(*(key_sets[p] for p in subset))) / len(union)
                for subset in combinations(profiles, k)
            ]
            coverage[k] = sum(shares) / len(shares)
        return CoverageCurve(page_url=comparison.page_url, coverage=coverage)

    def mean_coverage_curve(self, dataset: AnalysisDataset) -> Dict[int, float]:
        """The dataset-average coverage curve (takeaway #4's answer)."""
        accumulator: Dict[int, List[float]] = {}
        for entry in dataset:
            curve = self.coverage_curve(entry.comparison)
            for k, value in curve.coverage.items():
                accumulator.setdefault(k, []).append(value)
        return {k: safe_mean(values) for k, values in sorted(accumulator.items())}

    def profiles_needed(
        self, dataset: AnalysisDataset, target: float = 0.95
    ) -> Optional[int]:
        """How many profiles does the average page need for ``target``?"""
        curve = self.mean_coverage_curve(dataset)
        for k in sorted(curve):
            if curve[k] >= target:
                return k
        return None


def bootstrap_ci(
    dataset: AnalysisDataset,
    statistic: Callable[[PageComparison], Optional[float]],
    iterations: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Bootstrap a per-page statistic: returns (point, low, high).

    ``statistic`` maps a page comparison to a value (``None`` to skip the
    page).  Resampling is over pages — the unit the paper's aggregates
    average over — giving the sampling error a study of this many pages
    should report alongside its point estimate.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    values = [
        value
        for value in (statistic(entry.comparison) for entry in dataset)
        if value is not None
    ]
    if not values:
        raise ValueError("statistic produced no values")
    rng = child_rng(seed, "bootstrap")
    point = sum(values) / len(values)
    replicates = []
    for _ in range(iterations):
        sample = [values[rng.randrange(len(values))] for _ in values]
        replicates.append(sum(sample) / len(sample))
    replicates.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = int(alpha * (iterations - 1))
    high_index = int((1.0 - alpha) * (iterations - 1))
    return point, replicates[low_index], replicates[high_index]
