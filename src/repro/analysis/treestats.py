"""Tree-level descriptive statistics (paper Table 2, Figures 1 and 3).

Covers the dataset overview: tree dimensions (nodes, depth, breadth),
node presence across profiles (in how many of the five trees does a node
occur), the depth × breadth distribution, and the per-depth composition
by node type (party × tracking).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..stats.descriptive import Summary, summarize
from .dataset import AnalysisDataset


@dataclass(frozen=True)
class TreeOverview:
    """Table 2: dimensions plus cross-profile presence."""

    nodes: Summary
    depth: Summary
    breadth: Summary
    mean_presence: float
    present_in_all_share: float
    present_in_one_share: float
    tree_count: int
    node_count: int


@dataclass(frozen=True)
class DepthTypeComposition:
    """Figure 3: per-depth shares of node types."""

    depth: int
    first_party: float
    third_party: float
    tracking: float
    non_tracking: float
    total_nodes: int


class TreeStatsAnalyzer:
    """Computes Table 2, Figure 1, and Figure 3."""

    def overview(self, dataset: AnalysisDataset) -> TreeOverview:
        """Table 2 for a dataset."""
        node_counts: List[float] = []
        depths: List[float] = []
        breadths: List[float] = []
        for entry in dataset:
            for tree in entry.comparison.tree_list():
                node_counts.append(tree.node_count)
                depths.append(tree.max_depth)
                breadths.append(tree.breadth)
        presence = [node.presence_count for node in dataset.iter_nodes()]
        total = len(presence)
        profile_count = len(dataset.profiles)
        in_all = sum(1 for count in presence if count == profile_count)
        in_one = sum(1 for count in presence if count == 1)
        return TreeOverview(
            nodes=summarize(node_counts),
            depth=summarize(depths),
            breadth=summarize(breadths),
            mean_presence=sum(presence) / total if total else 0.0,
            present_in_all_share=in_all / total if total else 0.0,
            present_in_one_share=in_one / total if total else 0.0,
            tree_count=len(node_counts),
            node_count=total,
        )

    def depth_breadth_distribution(
        self, dataset: AnalysisDataset
    ) -> Dict[Tuple[int, int], int]:
        """Figure 1: (depth, breadth) → number of trees."""
        counts: Counter = Counter()
        for entry in dataset:
            for tree in entry.comparison.tree_list():
                counts[(tree.max_depth, tree.breadth)] += 1
        return dict(counts)

    def shallow_broad_share(
        self, dataset: AnalysisDataset, depth_below: int = 6, breadth_below: int = 21
    ) -> float:
        """Share of trees with depth < ``depth_below`` and breadth <
        ``breadth_below`` (the paper: 56% for <6 / <21)."""
        total = 0
        matching = 0
        for entry in dataset:
            for tree in entry.comparison.tree_list():
                total += 1
                if tree.max_depth < depth_below and tree.breadth < breadth_below:
                    matching += 1
        return matching / total if total else 0.0

    def composition_by_depth(
        self, dataset: AnalysisDataset, combine_after: int = 6
    ) -> List[DepthTypeComposition]:
        """Figure 3: node-type volumes per depth (deep levels combined).

        Counts tree-node occurrences (not aligned nodes): each tree
        contributes its own nodes, matching how the figure counts volume.
        Depth 0 is the visited page itself (always first party).
        """
        first_party: Dict[int, int] = defaultdict(int)
        third_party: Dict[int, int] = defaultdict(int)
        tracking: Dict[int, int] = defaultdict(int)
        non_tracking: Dict[int, int] = defaultdict(int)
        for entry in dataset:
            for tree in entry.comparison.tree_list():
                for node in tree.nodes(include_root=True):
                    bucket = min(node.depth, combine_after)
                    if node.is_third_party:
                        third_party[bucket] += 1
                    else:
                        first_party[bucket] += 1
                    if node.is_tracking:
                        tracking[bucket] += 1
                    else:
                        non_tracking[bucket] += 1
        rows = []
        for depth in sorted(set(first_party) | set(third_party)):
            fp = first_party.get(depth, 0)
            tp = third_party.get(depth, 0)
            trk = tracking.get(depth, 0)
            non = non_tracking.get(depth, 0)
            total = fp + tp
            if total == 0:
                continue
            rows.append(
                DepthTypeComposition(
                    depth=depth,
                    first_party=fp / total,
                    third_party=tp / total,
                    tracking=trk / total,
                    non_tracking=non / total,
                    total_nodes=total,
                )
            )
        return rows

    def pairwise_data_variation(self, dataset: AnalysisDataset) -> float:
        """Share of data that differs when comparing two profiles (≈48%).

        Mean over profile pairs of ``1 − J(tree_a nodes, tree_b nodes)``
        across all pages.
        """
        values: List[float] = []
        for entry in dataset:
            comparison = entry.comparison
            profiles = comparison.profiles
            for i in range(len(profiles)):
                for j in range(i + 1, len(profiles)):
                    values.append(
                        1.0 - comparison.pairwise_tree_similarity(profiles[i], profiles[j])
                    )
        return sum(values) / len(values) if values else 0.0
