"""Per-depth node similarity (paper Table 3, §4.1).

For every page, each depth level is compared across the five trees: depth
one with depth one, depth two with depth two, and so on — revealing
*where* in a tree differences occur.  The table's five rows restrict the
node universe differently: all nodes, only nodes with children, only
nodes present in all trees, first-party nodes, and third-party nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..stats.descriptive import Summary, summarize
from .categories import SimilarityCategory, categorize
from .comparison import NodeComparison
from .dataset import AnalysisDataset

NodeFilter = Callable[[NodeComparison], bool]


@dataclass(frozen=True)
class DepthSimilarityRow:
    """One row of Table 3."""

    label: str
    category: SimilarityCategory
    summary: Summary

    @property
    def similarity(self) -> float:
        return self.summary.mean


def _with_children(node: NodeComparison) -> bool:
    return any(view.child_count > 0 for view in node.present_views())


def _depth_one_needs_children(node: NodeComparison) -> bool:
    """Keep deeper nodes; at depth one require at least one child."""
    if node.min_depth != 1:
        return True
    return _with_children(node)


def _in_all(node: NodeComparison) -> bool:
    return node.in_all_profiles


def _first_party(node: NodeComparison) -> bool:
    return not node.is_third_party


def _third_party(node: NodeComparison) -> bool:
    return node.is_third_party


#: Table 3's rows: label → node filter.
TABLE3_FILTERS: Dict[str, Optional[NodeFilter]] = {
    "across all depths (all nodes)": None,
    "across all depths (only nodes with children)": _depth_one_needs_children,
    "nodes in all trees": _in_all,
    "first-party nodes": _first_party,
    "third-party nodes": _third_party,
}


class DepthAnalyzer:
    """Computes per-depth similarities and the Table 3 aggregate rows."""

    def per_depth_values(
        self,
        dataset: AnalysisDataset,
        keys_filter: Optional[NodeFilter] = None,
    ) -> List[float]:
        """One similarity value per (page, depth) cell."""
        values: List[float] = []
        for entry in dataset:
            comparison = entry.comparison
            for depth in range(1, comparison.max_depth() + 1):
                similarity = comparison.depth_similarity(depth, keys_filter=keys_filter)
                if similarity is not None:
                    values.append(similarity)
        return values

    def row(
        self,
        dataset: AnalysisDataset,
        label: str,
        keys_filter: Optional[NodeFilter] = None,
    ) -> Optional[DepthSimilarityRow]:
        values = self.per_depth_values(dataset, keys_filter)
        if not values:
            return None
        summary = summarize(values)
        return DepthSimilarityRow(
            label=label, category=categorize(summary.mean), summary=summary
        )

    def table3(self, dataset: AnalysisDataset) -> List[DepthSimilarityRow]:
        """All five rows of Table 3 (rows without data are skipped)."""
        rows = []
        for label, keys_filter in TABLE3_FILTERS.items():
            row = self.row(dataset, label, keys_filter)
            if row is not None:
                rows.append(row)
        return rows

    def same_depth_share_for_common_nodes(self, dataset: AnalysisDataset) -> float:
        """Of the nodes present in all trees, how many sit at the same depth?

        The paper finds this is essentially all of them ("if a node appears
        in all trees, it will appear at the same depth").
        """
        total = 0
        same = 0
        for node in dataset.iter_nodes():
            if not node.in_all_profiles:
                continue
            total += 1
            if node.same_depth_everywhere:
                same += 1
        return same / total if total else 1.0

    def mean_similarity_by_depth(
        self,
        dataset: AnalysisDataset,
        max_depth: int,
        keys_filter: Optional[NodeFilter] = None,
    ) -> Dict[int, float]:
        """Depth → mean similarity (depths beyond ``max_depth`` collapse)."""
        buckets: Dict[int, List[float]] = {}
        for entry in dataset:
            comparison = entry.comparison
            for depth in range(1, comparison.max_depth() + 1):
                similarity = comparison.depth_similarity(depth, keys_filter=keys_filter)
                if similarity is None:
                    continue
                bucket = min(depth, max_depth)
                buckets.setdefault(bucket, []).append(similarity)
        return {
            depth: sum(values) / len(values)
            for depth, values in sorted(buckets.items())
        }
