"""Vertical tree analysis: dependency chains and parents (paper §3.2, §4.2).

The vertical pass works bottom-up from the last node of each branch and
asks two questions:

* **chain determinism** — is a node's entire dependency chain (all of its
  (grand)parents) identical across the trees it occurs in?
* **parent stability** — is a node always loaded by the same parent, and
  how similar are the parent sets across trees (pairwise-mean Jaccard,
  with absent trees contributing an empty set, Appendix D)?

Nodes at depth one are excluded where the paper excludes them: their chain
is a single parent (the visited page), so they are trivially identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..stats.descriptive import ratio, safe_mean
from ..web.resources import ResourceType
from .comparison import PageComparison
from .dataset import AnalysisDataset


@dataclass(frozen=True)
class ChainRecord:
    """Chain/parent determinism of one node on one page."""

    page_url: str
    key: str
    depth: int
    resource_type: ResourceType
    is_third_party: bool
    is_tracking: bool
    presence_count: int
    in_all_profiles: bool
    same_chain: bool
    unique_chains: int
    same_parent: bool
    parent_similarity: float
    same_depth: bool


@dataclass(frozen=True)
class ChainStatistics:
    """Aggregate chain behaviour across a dataset (§4.2 headline numbers)."""

    nodes_considered: int
    same_chain_share: float
    unique_chain_share: float
    same_chain_share_beyond_depth_one: float
    same_chain_depth_distribution: Dict[int, float]


class VerticalAnalyzer:
    """Runs the bottom-up chain/parent comparison."""

    def analyze_page(self, comparison: PageComparison) -> List[ChainRecord]:
        """Chain records for every node of one page."""
        records: List[ChainRecord] = []
        for node in comparison.nodes():
            records.append(
                ChainRecord(
                    page_url=comparison.page_url,
                    key=node.key,
                    depth=node.min_depth,
                    resource_type=node.resource_type,
                    is_third_party=node.is_third_party,
                    is_tracking=node.is_tracking,
                    presence_count=node.presence_count,
                    in_all_profiles=node.in_all_profiles,
                    same_chain=node.same_chain_everywhere(),
                    unique_chains=node.unique_chain_count(),
                    same_parent=node.same_parent_everywhere(),
                    parent_similarity=node.parent_similarity(),
                    same_depth=node.same_depth_everywhere,
                )
            )
        return records

    def all_records(self, dataset: AnalysisDataset) -> List[ChainRecord]:
        records: List[ChainRecord] = []
        for entry in dataset:
            records.extend(self.analyze_page(entry.comparison))
        return records

    # -- aggregates ------------------------------------------------------------

    def chain_statistics(
        self, records: Iterable[ChainRecord], in_all_only: bool = True
    ) -> ChainStatistics:
        """The paper's §4.2 chain numbers.

        ``in_all_only`` restricts to nodes present in all trees, which is
        how the paper frames "75% of the nodes have the same dependency
        chains".
        """
        considered = [
            record
            for record in records
            if record.in_all_profiles or not in_all_only
        ]
        same_chain = [record for record in considered if record.same_chain]
        unique = [record for record in considered if record.unique_chains > 0]
        beyond_depth_one = [record for record in considered if record.depth >= 2]
        same_beyond = [record for record in beyond_depth_one if record.same_chain]
        depth_distribution: Dict[int, int] = {}
        for record in same_chain:
            if record.depth >= 2:
                depth_distribution[record.depth] = depth_distribution.get(record.depth, 0) + 1
        total = len(considered)
        return ChainStatistics(
            nodes_considered=total,
            same_chain_share=ratio(len(same_chain), total),
            unique_chain_share=ratio(len(unique), total),
            same_chain_share_beyond_depth_one=ratio(len(same_beyond), len(beyond_depth_one)),
            same_chain_depth_distribution={
                depth: count / total for depth, count in sorted(depth_distribution.items())
            },
        )

    def same_parent_share(
        self, records: Iterable[ChainRecord], min_depth: int = 2
    ) -> float:
        """Share of same-depth nodes (depth ≥ 2) always loaded by the same
        parent — the paper's "61% of the nodes are triggered by the same
        parent in all five profiles" statistic."""
        eligible = [
            record
            for record in records
            if record.in_all_profiles and record.same_depth and record.depth >= min_depth
        ]
        return ratio(sum(1 for r in eligible if r.same_parent), len(eligible))

    def divergent_parent_similarity(self, records: Iterable[ChainRecord]) -> float:
        """Mean parent similarity over nodes with divergent parents (§4.2)."""
        divergent = [
            record.parent_similarity
            for record in records
            if record.in_all_profiles and not record.same_parent
        ]
        return safe_mean(divergent)


def page_parent_similarity(comparison: PageComparison) -> Optional[float]:
    """Page-average parent similarity over all nodes (used by Figure 5a)."""
    nodes = comparison.nodes()
    if not nodes:
        return None
    values = [node.parent_similarity() for node in nodes]
    return sum(values) / len(values)
