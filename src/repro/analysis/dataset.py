"""The analysis dataset: aligned tree sets for every comparable page.

:class:`AnalysisDataset` is what the evaluation sections operate on — the
vetted collection of :class:`~repro.analysis.comparison.PageComparison`
objects (pages crawled successfully by all profiles) plus site metadata
(rank for the popularity buckets).
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from ..blocklist.matcher import FilterList
from ..crawler.storage import MeasurementStore
from ..errors import AnalysisError, InvalidURLError
from ..obs import NULL_OBS, ObsContext
from ..trees.builder import TreeBuilder
from ..trees.tree import DependencyTree
from .comparison import NodeComparison, PageComparison


@dataclass(frozen=True)
class PageEntry:
    """One comparable page: its comparison object and crawl metadata."""

    comparison: PageComparison
    site: str
    site_rank: int

    @property
    def page_url(self) -> str:
        return self.comparison.page_url


class AnalysisDataset:
    """All comparable pages of one measurement run."""

    def __init__(self, entries: Sequence[PageEntry], profiles: Sequence[str]) -> None:
        if not profiles:
            raise AnalysisError("dataset needs profile names")
        self.entries: List[PageEntry] = list(entries)
        self.profiles: List[str] = list(profiles)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_store(
        cls,
        store: MeasurementStore,
        filter_list: Optional[FilterList] = None,
        profiles: Optional[Sequence[str]] = None,
        require_all: bool = True,
        jobs: int = 1,
        obs: Optional[ObsContext] = None,
        include_partial: bool = False,
    ) -> "AnalysisDataset":
        """Build trees for every vetted page and align them.

        This is the paper's pipeline step between crawling and analysis:
        only pages successfully crawled by all profiles are kept.
        ``include_partial`` lets salvaged partial visits stand in for
        missing successes (default: excluded, matching the paper).

        ``jobs > 1`` rebuilds the trees in a process pool, one read-only
        store snapshot per worker, chunking the (sorted) page list
        contiguously so entry order — and every per-page metric — is
        identical to the serial build.  Pool size is clamped so every
        worker gets at least :data:`_MIN_PAGES_PER_JOB` pages; datasets
        too small to amortize a fork fall back to the serial path.
        """
        obs = obs if obs is not None else NULL_OBS
        profile_names = list(profiles) if profiles is not None else store.profiles()
        with obs.tracer.span("dataset", key="dataset") as span:
            pages = (
                store.pages_crawled_by_all(
                    profile_names, include_partial=include_partial
                )
                if require_all
                else store.pages()
            )
            jobs = _effective_jobs(jobs, len(pages))
            if jobs > 1:
                entries = _build_entries_parallel(
                    store,
                    pages,
                    profile_names,
                    filter_list,
                    require_all,
                    jobs,
                    obs,
                    include_partial=include_partial,
                )
            else:
                entries = _build_entries(
                    store,
                    pages,
                    profile_names,
                    filter_list,
                    require_all,
                    obs,
                    include_partial=include_partial,
                )
            span.set("pages", len(pages))
            span.set("entries", len(entries))
            metrics = obs.metrics
            if metrics.enabled:
                metrics.counter("dataset.pages_vetted").inc(len(pages))
                metrics.counter("dataset.entries").inc(len(entries))
        return cls(entries, profile_names)

    @classmethod
    def from_bundle(
        cls,
        bundle,
        filter_list: Optional[FilterList] = None,
        profiles: Optional[Sequence[str]] = None,
        require_all: bool = True,
        jobs: int = 1,
        obs: Optional[ObsContext] = None,
        include_partial: bool = False,
    ) -> "AnalysisDataset":
        """Build the dataset from a recorded crawl bundle (no live crawl).

        ``bundle`` is a :class:`~repro.bundle.Bundle` or a path to one.
        The store is replayed in memory and, unless a ``filter_list`` is
        passed, the classification runs on the *archived* filter list —
        the whole point of bundling is that later analyses see exactly
        the artifact the crawl saw.
        """
        from ..bundle import Bundle  # deferred: keeps repro.analysis import-light

        if not isinstance(bundle, Bundle):
            bundle = Bundle.open(bundle)
        obs = obs if obs is not None else NULL_OBS
        store = bundle.replay(obs=obs)
        if filter_list is None:
            filter_list = FilterList.from_text(bundle.filter_list_text())
        return cls.from_store(
            store,
            filter_list=filter_list,
            profiles=profiles,
            require_all=require_all,
            jobs=jobs,
            obs=obs,
            include_partial=include_partial,
        )

    @classmethod
    def from_tree_sets(
        cls,
        tree_sets: Sequence[Mapping[str, DependencyTree]],
        site_ranks: Optional[Mapping[str, int]] = None,
    ) -> "AnalysisDataset":
        """Build a dataset directly from per-page tree mappings (tests)."""
        if not tree_sets:
            raise AnalysisError("no tree sets supplied")
        profiles = sorted(tree_sets[0])
        entries = []
        for trees in tree_sets:
            comparison = PageComparison(trees)
            site = _site_of(comparison.page_url)
            rank = (site_ranks or {}).get(site, 1)
            entries.append(PageEntry(comparison=comparison, site=site, site_rank=rank))
        return cls(entries, profiles)

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[PageEntry]:
        return iter(self.entries)

    def comparisons(self) -> List[PageComparison]:
        return [entry.comparison for entry in self.entries]

    def iter_nodes(self) -> Iterator[NodeComparison]:
        """Stream every aligned node of every page."""
        for entry in self.entries:
            yield from entry.comparison.nodes()

    def node_count(self) -> int:
        return sum(len(entry.comparison) for entry in self.entries)

    def sites(self) -> Dict[str, int]:
        """Site → rank for all sites in the dataset."""
        return {entry.site: entry.site_rank for entry in self.entries}


def _build_entries(
    store: MeasurementStore,
    pages: Sequence[str],
    profile_names: Sequence[str],
    filter_list: Optional[FilterList],
    require_all: bool,
    obs: ObsContext = NULL_OBS,
    include_partial: bool = False,
) -> List[PageEntry]:
    """The per-page build loop, shared by the serial path and pool workers."""
    builder = TreeBuilder(filter_list=filter_list, obs=obs)
    entries: List[PageEntry] = []
    for page_url in pages:
        trees = builder.build_for_page(
            store, page_url, profile_names, include_partial=include_partial
        )
        if require_all and len(trees) != len(profile_names):
            continue
        if not trees:
            continue
        visit = next(
            iter(
                store.successful_visits_for_page(
                    page_url, profile_names, include_partial=include_partial
                ).values()
            )
        )
        entries.append(
            PageEntry(
                comparison=PageComparison(trees),
                site=visit.site,
                site_rank=visit.site_rank,
            )
        )
    return entries


@dataclass
class ShardFold:
    """The commutative summand one shard store contributes to a dataset.

    Sites partition pages and every site lives entirely in one shard, so
    per-shard vetting (:meth:`MeasurementStore.pages_crawled_by_all`)
    over a shard store equals that shard's slice of the global vetting —
    folds can be computed independently and combined in any order.
    """

    entries: List[PageEntry] = field(default_factory=list)
    pages_vetted: int = 0
    metrics: Optional[Dict[str, Dict[str, object]]] = None


def fold_shard_store(
    db_path: str,
    profile_names: Sequence[str],
    filter_list: Optional[FilterList] = None,
    require_all: bool = True,
    obs_config=None,
    include_partial: bool = False,
) -> ShardFold:
    """Analyze one finished shard store end-to-end: vet, build, package.

    This is the streaming pipeline's pool-worker entry point (top level,
    picklable arguments): it opens the shard read-only, runs the same
    vetting and tree building the batch path runs over the merged store,
    and returns the shard's :class:`ShardFold`.  Worker telemetry is
    metrics-only (tree building records no spans), exported for the
    parent's commutative merge.
    """
    worker_obs = ObsContext.from_config(obs_config)
    with MeasurementStore.open_readonly(db_path) as store:
        pages = (
            store.pages_crawled_by_all(
                profile_names, include_partial=include_partial
            )
            if require_all
            else store.pages()
        )
        entries = _build_entries(
            store,
            pages,
            profile_names,
            filter_list,
            require_all,
            worker_obs,
            include_partial=include_partial,
        )
    return ShardFold(
        entries=entries,
        pages_vetted=len(pages),
        metrics=(
            worker_obs.metrics.as_dict() if worker_obs.metrics.enabled else None
        ),
    )


class StreamingDataset:
    """A running, commutative fold of per-shard analysis results.

    The streaming pipeline feeds one :class:`ShardFold` per crawl shard —
    in *completion* order, which varies run to run — and
    :meth:`finalize` produces an :class:`AnalysisDataset` byte-identical
    to ``AnalysisDataset.from_store`` over the merged store:

    * entries sort by ``page_url``, the exact global order the batch
      path's ``ORDER BY page_url`` vetting query yields (page URLs are
      unique across shards, so the sort is total);
    * worker metric exports merge commutatively, so the registry equals
      a serial build's regardless of fold order;
    * the ``dataset`` span and its counters are emitted at finalize
      time, in the batch path's canonical position.
    """

    def __init__(
        self,
        profile_names: Sequence[str],
        obs: Optional[ObsContext] = None,
    ) -> None:
        if not profile_names:
            raise AnalysisError("streaming dataset needs profile names")
        self.profile_names = list(profile_names)
        self.obs = obs if obs is not None else NULL_OBS
        self._entries: List[PageEntry] = []
        self._pages_vetted = 0
        self._metric_exports: List[Dict[str, Dict[str, object]]] = []
        self._folds = 0
        self._finalized = False

    @property
    def folds(self) -> int:
        """How many shard folds have been absorbed so far."""
        return self._folds

    @property
    def pages_vetted(self) -> int:
        return self._pages_vetted

    def fold(self, result: ShardFold) -> None:
        """Absorb one shard's contribution (any order; commutative)."""
        if self._finalized:
            raise AnalysisError("streaming dataset is already finalized")
        self._entries.extend(result.entries)
        self._pages_vetted += result.pages_vetted
        if result.metrics:
            self._metric_exports.append(result.metrics)
        self._folds += 1

    def finalize(self) -> AnalysisDataset:
        """Seal the fold into a batch-identical :class:`AnalysisDataset`."""
        if self._finalized:
            raise AnalysisError("streaming dataset is already finalized")
        self._finalized = True
        obs = self.obs
        with obs.tracer.span("dataset", key="dataset") as span:
            self._entries.sort(key=lambda entry: entry.page_url)
            obs.metrics.merge_all(self._metric_exports)
            span.set("pages", self._pages_vetted)
            span.set("entries", len(self._entries))
            metrics = obs.metrics
            if metrics.enabled:
                metrics.counter("dataset.pages_vetted").inc(self._pages_vetted)
                metrics.counter("dataset.entries").inc(len(self._entries))
        return AnalysisDataset(self._entries, self.profile_names)


def _build_entries_parallel(
    store: MeasurementStore,
    pages: Sequence[str],
    profile_names: Sequence[str],
    filter_list: Optional[FilterList],
    require_all: bool,
    jobs: int,
    obs: ObsContext = NULL_OBS,
    include_partial: bool = False,
) -> List[PageEntry]:
    """Fan the page list out to a process pool over read-only snapshots."""
    snapshot: Optional[str] = None
    if store.path == ":memory:" or store.readonly:
        # Workers cannot share the parent's connection; snapshot to disk.
        handle, snapshot = tempfile.mkstemp(prefix="repro-dataset-", suffix=".sqlite")
        os.close(handle)
        store.snapshot_to(snapshot)
        db_path = snapshot
    else:
        # Workers open the live path over *fresh* connections, which see
        # only committed, checkpointed state — publish any pending batch
        # first or the pool analyzes a store missing it.
        store.flush()
        db_path = store.path
    chunks = _chunked(list(pages), jobs)
    obs_config = obs.config()
    chunk_entries: List[Optional[List[PageEntry]]] = [None] * len(chunks)
    try:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            futures = {
                pool.submit(
                    _build_entries_worker,
                    (
                        db_path,
                        chunk,
                        list(profile_names),
                        filter_list,
                        require_all,
                        obs_config,
                        include_partial,
                    ),
                ): index
                for index, chunk in enumerate(chunks)
            }
            # No barrier: each chunk's metrics fold in as it completes
            # (the merge is commutative, so completion order cannot show
            # in the registry) and entry order is restored by chunk
            # index, keeping the result identical to the serial build.
            for future in as_completed(futures):
                index = futures[future]
                entries, metrics = future.result()
                chunk_entries[index] = entries
                if metrics:
                    obs.metrics.merge(metrics)
    finally:
        if snapshot is not None:
            os.unlink(snapshot)
    return [entry for entries in chunk_entries for entry in entries]


def _build_entries_worker(args):
    (
        db_path,
        pages,
        profile_names,
        filter_list,
        require_all,
        obs_config,
        include_partial,
    ) = args
    worker_obs = ObsContext.from_config(obs_config)
    with MeasurementStore.open_readonly(db_path) as store:
        entries = _build_entries(
            store,
            pages,
            profile_names,
            filter_list,
            require_all,
            worker_obs,
            include_partial=include_partial,
        )
    metrics = worker_obs.metrics.as_dict() if worker_obs.metrics.enabled else None
    return entries, metrics


#: Minimum pages a pool worker must receive for a fork to pay off; below
#: ``2 × this`` the build runs serially (process start-up dominates tree
#: building for a handful of pages).
_MIN_PAGES_PER_JOB = 4


def _effective_jobs(jobs: int, page_count: int) -> int:
    """Clamp ``jobs`` so each worker gets ``>= _MIN_PAGES_PER_JOB`` pages."""
    return min(jobs, page_count // _MIN_PAGES_PER_JOB)


def _chunked(items: List[str], jobs: int) -> List[List[str]]:
    """Split ``items`` into at most ``jobs`` contiguous, balanced chunks."""
    count = min(jobs, len(items))
    size, remainder = divmod(len(items), count)
    chunks: List[List[str]] = []
    start = 0
    for index in range(count):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(items[start:end])
        start = end
    return [chunk for chunk in chunks if chunk]


def _site_of(page_url: str) -> str:
    """The site (registrable domain) a page URL belongs to.

    Routed through the shared URL model so ``user:pw@`` and ``:port``
    never leak into site keys — the hand parser this replaces kept both,
    splitting one site's pages into distinct groups the moment any URL
    carried credentials or an explicit port.  Inputs the strict parser
    rejects (bare hosts, odd schemes in test fixtures) degrade to the
    same host-isolation steps before the PSL lookup.
    """
    from ..web import psl
    from ..web.url import URL

    try:
        url = URL.parse(page_url)
    except InvalidURLError:
        scheme_sep = page_url.find("://")
        host = page_url[scheme_sep + 3 :] if scheme_sep >= 0 else page_url
        for stop in ("/", "?", "#"):
            index = host.find(stop)
            if index >= 0:
                host = host[:index]
        host = host.rsplit("@", 1)[-1]
        host = host.split(":", 1)[0].lower()
        return psl.registrable_domain(host) or host
    return url.site or url.host
