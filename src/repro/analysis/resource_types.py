"""Resource-type effects on similarity (paper Table 4, Figures 5 and 7).

Which content types keep their loading dependencies stable across setups,
and which cause the dissimilarities?  The module computes

* Table 4a — per type, the share of (beyond-depth-one) nodes always
  loaded by the same dependency chain;
* Table 4b — per type, the mean parent similarity (lowest types shown);
* Figure 5 — the composition of pages by resource type, bucketed by the
  page's average parent/child similarity;
* Figure 7 — per type, the mean child/parent similarity by depth;
* the Kruskal-Wallis test that the resource type affects similarity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..stats.descriptive import safe_mean
from ..stats.nonparametric import TestResult, kruskal_wallis
from ..web.resources import ResourceType
from .dataset import AnalysisDataset
from .horizontal import page_child_similarity
from .vertical import page_parent_similarity

#: Types shown in Figure 5 (the most common dynamic ones).
FIGURE5_TYPES: Tuple[ResourceType, ...] = (
    ResourceType.IMAGE,
    ResourceType.SCRIPT,
    ResourceType.STYLESHEET,
    ResourceType.XHR,
    ResourceType.SUB_FRAME,
)


@dataclass(frozen=True)
class TypeChainRow:
    """Per-type chain determinism (Table 4a) and similarity (Table 4b)."""

    resource_type: ResourceType
    node_count: int
    same_chain_share: float
    mean_parent_similarity: float
    mean_child_similarity: float


class ResourceTypeAnalyzer:
    """Per-resource-type similarity breakdowns."""

    # -- Table 4 -----------------------------------------------------------------

    def type_rows(self, dataset: AnalysisDataset, min_depth: int = 2) -> List[TypeChainRow]:
        """One row per observed resource type, for nodes at ``min_depth``+.

        Chain determinism considers nodes present in all trees (as §4.2
        does); parent/child similarity averages over all aligned nodes of
        the type.
        """
        chain_total: Dict[ResourceType, int] = defaultdict(int)
        chain_same: Dict[ResourceType, int] = defaultdict(int)
        parent_sims: Dict[ResourceType, List[float]] = defaultdict(list)
        child_sims: Dict[ResourceType, List[float]] = defaultdict(list)
        counts: Dict[ResourceType, int] = defaultdict(int)
        for node in dataset.iter_nodes():
            if node.min_depth < min_depth:
                continue
            rtype = node.resource_type
            counts[rtype] += 1
            parent_sims[rtype].append(node.parent_similarity())
            if any(view.child_count > 0 for view in node.present_views()):
                child_sims[rtype].append(node.child_similarity())
            if node.in_all_profiles:
                chain_total[rtype] += 1
                if node.same_chain_everywhere():
                    chain_same[rtype] += 1
        rows = []
        for rtype in sorted(counts, key=lambda t: t.value):
            total = chain_total.get(rtype, 0)
            rows.append(
                TypeChainRow(
                    resource_type=rtype,
                    node_count=counts[rtype],
                    same_chain_share=chain_same.get(rtype, 0) / total if total else 0.0,
                    mean_parent_similarity=safe_mean(parent_sims.get(rtype, [])),
                    mean_child_similarity=safe_mean(child_sims.get(rtype, [])),
                )
            )
        return rows

    def table4a(self, dataset: AnalysisDataset, top: int = 5) -> List[TypeChainRow]:
        """Types most often loaded by the same chain (descending)."""
        rows = [row for row in self.type_rows(dataset) if row.node_count > 0]
        rows.sort(key=lambda row: row.same_chain_share, reverse=True)
        return rows[:top]

    def table4b(self, dataset: AnalysisDataset, top: int = 5) -> List[TypeChainRow]:
        """Types with the lowest parent similarity (ascending)."""
        rows = [row for row in self.type_rows(dataset) if row.node_count > 0]
        rows.sort(key=lambda row: row.mean_parent_similarity)
        return rows[:top]

    # -- Figure 5 ------------------------------------------------------------------

    def page_similarity_composition(
        self,
        dataset: AnalysisDataset,
        kind: str = "parent",
        bins: int = 9,
        types: Sequence[ResourceType] = FIGURE5_TYPES,
    ) -> Dict[float, Dict[ResourceType, float]]:
        """Figure 5: for pages bucketed by average parent (or child)
        similarity, the relative share of each resource type's nodes.

        Returns ``bin_upper_bound → {type: share}``.
        """
        if kind not in ("parent", "child"):
            raise ValueError(f"kind must be 'parent' or 'child', got {kind!r}")
        counters: Dict[float, Dict[ResourceType, int]] = defaultdict(lambda: defaultdict(int))
        for entry in dataset:
            comparison = entry.comparison
            if kind == "parent":
                page_score = page_parent_similarity(comparison)
            else:
                page_score = page_child_similarity(comparison)
            if page_score is None:
                continue
            upper = _bin_upper(page_score, bins)
            for node in comparison.nodes():
                if node.resource_type in types:
                    counters[upper][node.resource_type] += 1
        result: Dict[float, Dict[ResourceType, float]] = {}
        for upper, counts in sorted(counters.items()):
            total = sum(counts.values())
            result[upper] = {
                rtype: counts.get(rtype, 0) / total if total else 0.0 for rtype in types
            }
        return result

    # -- Figure 7 ------------------------------------------------------------------

    def similarity_by_type_and_depth(
        self, dataset: AnalysisDataset, combine_after: int = 10
    ) -> Dict[ResourceType, Dict[int, Tuple[float, float]]]:
        """Figure 7: type → depth → (mean child sim, mean parent sim)."""
        child_acc: Dict[Tuple[ResourceType, int], List[float]] = defaultdict(list)
        parent_acc: Dict[Tuple[ResourceType, int], List[float]] = defaultdict(list)
        for node in dataset.iter_nodes():
            bucket = min(node.min_depth, combine_after)
            key = (node.resource_type, bucket)
            parent_acc[key].append(node.parent_similarity())
            if any(view.child_count > 0 for view in node.present_views()):
                child_acc[key].append(node.child_similarity())
        result: Dict[ResourceType, Dict[int, Tuple[float, float]]] = defaultdict(dict)
        for (rtype, depth) in sorted(set(child_acc) | set(parent_acc), key=lambda k: (k[0].value, k[1])):
            result[rtype][depth] = (
                safe_mean(child_acc.get((rtype, depth), [])),
                safe_mean(parent_acc.get((rtype, depth), [])),
            )
        return dict(result)

    # -- subframe impact (§4.2) -------------------------------------------------------

    def subframe_impact(
        self, dataset: AnalysisDataset
    ) -> Dict[str, Dict[str, Optional[float]]]:
        """Average page similarity for pages with vs. without subframes."""
        groups: Dict[str, Dict[str, List[float]]] = {
            "with_subframes": {"parent": [], "child": []},
            "without_subframes": {"parent": [], "child": []},
        }
        for entry in dataset:
            comparison = entry.comparison
            has_subframe = any(
                node.resource_type == ResourceType.SUB_FRAME
                for node in comparison.nodes()
            )
            group = "with_subframes" if has_subframe else "without_subframes"
            parent = page_parent_similarity(comparison)
            child = page_child_similarity(comparison)
            if parent is not None:
                groups[group]["parent"].append(parent)
            if child is not None:
                groups[group]["child"].append(child)
        return {
            group: {
                kind: (sum(values) / len(values) if values else None)
                for kind, values in kinds.items()
            }
            for group, kinds in groups.items()
        }

    # -- significance --------------------------------------------------------------

    def type_effect_test(
        self, dataset: AnalysisDataset, kind: str = "child", min_group: int = 3
    ) -> TestResult:
        """Kruskal-Wallis: does resource type affect similarity?"""
        groups: Dict[ResourceType, List[float]] = defaultdict(list)
        for node in dataset.iter_nodes():
            if kind == "child":
                if any(view.child_count > 0 for view in node.present_views()):
                    groups[node.resource_type].append(node.child_similarity())
            else:
                groups[node.resource_type].append(node.parent_similarity())
        samples = [values for values in groups.values() if len(values) >= min_group]
        if len(samples) < 2:
            raise ValueError("not enough resource-type groups for the test")
        return kruskal_wallis(*samples)


def _bin_upper(score: float, bins: int) -> float:
    """Upper bound of the similarity bin containing ``score``.

    Bins span (0.1, 1.0] in 0.1 steps for ``bins=9`` (Fig 5's x-axis).
    """
    width = 1.0 / (bins + 1)
    index = min(int(score / width), bins)
    upper = (index + 1) * width
    return round(upper, 10)
