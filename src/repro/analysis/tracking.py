"""Tracking-request case study (paper §5.3).

Tracking nodes — nodes whose URL matches the filter list — are the most
studied phenomenon the paper stress-tests.  The analysis contrasts them
with non-tracking nodes on every stability axis: node similarity, child
similarity, child counts, parent similarity, depth distribution, and who
triggers them (other trackers, third parties, scripts/frames).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..stats.descriptive import Summary, ratio, safe_mean, summarize
from ..web.resources import ResourceType
from .dataset import AnalysisDataset


@dataclass(frozen=True)
class TrackingReport:
    """§5.3 headline numbers."""

    tracking_node_share: float
    node_similarity: Summary
    child_similarity_tracking: Optional[Summary]
    child_similarity_non_tracking: Optional[Summary]
    mean_children_tracking: float
    mean_children_non_tracking: float
    parent_similarity_tracking: Optional[Summary]
    parent_similarity_non_tracking: Optional[Summary]
    depth_distribution: Dict[int, float]
    triggered_by_tracker_share: float
    tracker_parent_third_party_share: float
    parent_type_shares: Dict[str, float]


class TrackingAnalyzer:
    """Tracking vs. non-tracking stability comparison."""

    def analyze(self, dataset: AnalysisDataset, combine_depth_after: int = 4) -> TrackingReport:
        total_nodes = 0
        tracking_nodes = 0
        node_sims: List[float] = []
        child_track: List[float] = []
        child_non: List[float] = []
        children_track: List[float] = []
        children_non: List[float] = []
        parent_track: List[float] = []
        parent_non: List[float] = []
        depth_counts: Dict[int, int] = defaultdict(int)
        tracker_parent = 0
        tracker_parent_total = 0
        tracker_parent_third = 0
        parent_types: Dict[str, int] = defaultdict(int)

        for entry in dataset:
            comparison = entry.comparison
            for node in comparison.nodes():
                total_nodes += 1
                is_tracking = node.is_tracking
                views = node.present_views()
                has_children = any(view.child_count > 0 for view in views)
                child_sim = node.child_similarity() if has_children else None
                parent_sim = node.parent_similarity()
                mean_children = sum(view.child_count for view in views) / len(views)
                if is_tracking:
                    tracking_nodes += 1
                    node_sims.append(node.presence_count / len(node.views))
                    if child_sim is not None:
                        child_track.append(child_sim)
                    children_track.append(mean_children)
                    parent_track.append(parent_sim)
                    depth_counts[min(node.min_depth, combine_depth_after)] += 1
                    self._classify_parents(comparison, node, parent_types)
                    for view in views:
                        if view.parent_key is None:
                            continue
                        tracker_parent_total += 1
                        parent = comparison.node(view.parent_key)
                        if parent is None:
                            continue  # the visited page: first party, not a tracker
                        if parent.is_tracking:
                            tracker_parent += 1
                        if parent.is_third_party:
                            tracker_parent_third += 1
                else:
                    if child_sim is not None:
                        child_non.append(child_sim)
                    children_non.append(mean_children)
                    parent_non.append(parent_sim)

        depth_total = sum(depth_counts.values())
        return TrackingReport(
            tracking_node_share=ratio(tracking_nodes, total_nodes),
            node_similarity=summarize(node_sims) if node_sims else summarize([0.0]),
            child_similarity_tracking=summarize(child_track) if child_track else None,
            child_similarity_non_tracking=summarize(child_non) if child_non else None,
            mean_children_tracking=safe_mean(children_track),
            mean_children_non_tracking=safe_mean(children_non),
            parent_similarity_tracking=summarize(parent_track) if parent_track else None,
            parent_similarity_non_tracking=summarize(parent_non) if parent_non else None,
            depth_distribution={
                depth: count / depth_total for depth, count in sorted(depth_counts.items())
            }
            if depth_total
            else {},
            triggered_by_tracker_share=ratio(tracker_parent, tracker_parent_total),
            tracker_parent_third_party_share=ratio(tracker_parent_third, tracker_parent_total),
            parent_type_shares=self._normalize(parent_types),
        )

    def same_chain_contrast(self, dataset: AnalysisDataset) -> Dict[str, float]:
        """§4.2: share of nodes loaded by the same parents, tracking vs not."""
        same = {"tracking": 0, "non_tracking": 0}
        totals = {"tracking": 0, "non_tracking": 0}
        for node in dataset.iter_nodes():
            if not node.in_all_profiles:
                continue
            bucket = "tracking" if node.is_tracking else "non_tracking"
            totals[bucket] += 1
            if node.same_parent_everywhere():
                same[bucket] += 1
        return {
            bucket: ratio(same[bucket], totals[bucket]) for bucket in totals
        }

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _classify_parents(comparison, node, parent_types: Dict[str, int]) -> None:
        for view in node.present_views():
            if view.parent_key is None:
                continue
            parent = comparison.node(view.parent_key)
            if parent is None:
                parent_types["mainframe"] += 1
                continue
            rtype = parent.resource_type
            if rtype == ResourceType.SCRIPT:
                parent_types["script"] += 1
            elif rtype == ResourceType.SUB_FRAME:
                parent_types["subframe"] += 1
            elif rtype == ResourceType.MAIN_FRAME:
                parent_types["mainframe"] += 1
            else:
                parent_types["other"] += 1

    @staticmethod
    def _normalize(counts: Dict[str, int]) -> Dict[str, float]:
        total = sum(counts.values())
        if not total:
            return {}
        return {key: value / total for key, value in sorted(counts.items())}
