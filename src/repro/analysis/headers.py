"""Security-header consistency across profiles (the "security lottery").

The paper names client-side security inconsistencies (Roth et al.,
"The Security Lottery") among the setup-sensitive phenomena its framework
illuminates.  This analyzer compares the *document response headers* each
profile received for the same page:

* per header: in how many profiles was it present, and did its value
  agree?
* per page: is the security configuration consistent across all profiles?
* dataset rollup: the share of pages with at least one inconsistent
  security header — the lottery rate a one-profile study silently absorbs.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..crawler.storage import MeasurementStore
from ..stats.descriptive import ratio

#: The headers real studies audit; lowercase for matching.
SECURITY_HEADERS: Tuple[str, ...] = (
    "strict-transport-security",
    "content-security-policy",
    "x-frame-options",
    "x-content-type-options",
    "referrer-policy",
)


@dataclass(frozen=True)
class HeaderObservation:
    """One header on one page, across all profiles."""

    page_url: str
    header: str
    present_in: int
    profile_count: int
    values: Tuple[str, ...]

    @property
    def consistent_presence(self) -> bool:
        return self.present_in in (0, self.profile_count)

    @property
    def consistent_value(self) -> bool:
        return len(set(self.values)) <= 1

    @property
    def consistent(self) -> bool:
        return self.consistent_presence and self.consistent_value


@dataclass(frozen=True)
class HeaderReport:
    """Dataset-level security-header consistency."""

    pages: int
    observations: List[HeaderObservation]
    adoption: Dict[str, float]
    presence_lottery_rate: Dict[str, float]
    value_lottery_rate: Dict[str, float]
    inconsistent_page_share: float


class SecurityHeaderAnalyzer:
    """Compares document security headers across profiles."""

    def __init__(self, headers: Sequence[str] = SECURITY_HEADERS) -> None:
        self.headers = tuple(header.lower() for header in headers)

    def analyze(self, store: MeasurementStore, profiles: Sequence[str]) -> HeaderReport:
        pages = store.pages_crawled_by_all(profiles)
        observations: List[HeaderObservation] = []
        adoption_hits: Counter = Counter()
        presence_lottery: Counter = Counter()
        value_lottery: Counter = Counter()
        seen: Counter = Counter()
        inconsistent_pages = 0
        for page_url in pages:
            visits = store.successful_visits_for_page(page_url, profiles)
            per_header: Dict[str, List[Optional[str]]] = defaultdict(list)
            for visit in visits.values():
                response = store.document_response(visit.visit_id)
                for header in self.headers:
                    per_header[header].append(
                        response.header(header) if response is not None else None
                    )
            page_consistent = True
            for header in self.headers:
                values = per_header[header]
                present = [value for value in values if value is not None]
                observation = HeaderObservation(
                    page_url=page_url,
                    header=header,
                    present_in=len(present),
                    profile_count=len(values),
                    values=tuple(sorted(set(present))),
                )
                observations.append(observation)
                seen[header] += 1
                if present:
                    adoption_hits[header] += 1
                if not observation.consistent_presence:
                    presence_lottery[header] += 1
                    page_consistent = False
                if not observation.consistent_value:
                    value_lottery[header] += 1
                    page_consistent = False
            if not page_consistent:
                inconsistent_pages += 1
        return HeaderReport(
            pages=len(pages),
            observations=observations,
            adoption={
                header: ratio(adoption_hits[header], seen[header])
                for header in self.headers
            },
            presence_lottery_rate={
                header: ratio(presence_lottery[header], seen[header])
                for header in self.headers
            },
            value_lottery_rate={
                header: ratio(value_lottery[header], seen[header])
                for header in self.headers
            },
            inconsistent_page_share=ratio(inconsistent_pages, len(pages)),
        )
