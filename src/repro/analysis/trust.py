"""Implicit-trust analysis (after Ikram et al., cited by the paper).

A page *explicitly* trusts the third parties it embeds directly (depth
one).  Everything a third party loads in turn — depth two and beyond — is
only *implicitly* trusted: the site operator never chose it.  The paper's
instability findings concentrate exactly there, so this analyzer measures
how much of a page's third-party exposure is implicit, how deep the trust
chains run, and which entities are the most implicitly trusted — and how
*consistent* that exposure is across the five profiles.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..stats.descriptive import Summary, ratio, summarize
from .dataset import AnalysisDataset
from .jaccard import pairwise_mean_jaccard


@dataclass(frozen=True)
class TrustReport:
    """Dataset-level implicit-trust statistics."""

    explicit_third_party_share: float
    implicit_third_party_share: float
    chain_depth: Summary
    top_implicit_entities: List[Tuple[str, int]]
    implicit_sites_per_page: Summary
    exposure_similarity: Summary
    implicit_exposure_similarity: Summary


class ImplicitTrustAnalyzer:
    """Measures explicit vs implicit third-party exposure."""

    def analyze(self, dataset: AnalysisDataset, top: int = 5) -> TrustReport:
        explicit = 0
        implicit = 0
        chain_depths: List[float] = []
        implicit_entities: Counter = Counter()
        implicit_sites_per_page: List[float] = []
        exposure_sims: List[float] = []
        implicit_sims: List[float] = []
        for entry in dataset:
            comparison = entry.comparison
            per_profile_sites: Dict[str, set] = defaultdict(set)
            per_profile_implicit: Dict[str, set] = defaultdict(set)
            page_implicit_sites: set = set()
            for profile, tree in comparison.trees.items():
                for node in tree.third_party_nodes():
                    site = node.site or node.host
                    per_profile_sites[profile].add(site)
                    if node.depth == 1:
                        explicit += 1
                    else:
                        implicit += 1
                        chain_depths.append(float(node.depth))
                        per_profile_implicit[profile].add(site)
                        page_implicit_sites.add(site)
                        implicit_entities[site] += 1
            implicit_sites_per_page.append(float(len(page_implicit_sites)))
            exposure_sims.append(
                pairwise_mean_jaccard(
                    [frozenset(per_profile_sites[p]) for p in comparison.profiles]
                )
            )
            implicit_sims.append(
                pairwise_mean_jaccard(
                    [frozenset(per_profile_implicit[p]) for p in comparison.profiles]
                )
            )
        total = explicit + implicit
        return TrustReport(
            explicit_third_party_share=ratio(explicit, total),
            implicit_third_party_share=ratio(implicit, total),
            chain_depth=summarize(chain_depths) if chain_depths else summarize([0.0]),
            top_implicit_entities=implicit_entities.most_common(top),
            implicit_sites_per_page=(
                summarize(implicit_sites_per_page)
                if implicit_sites_per_page
                else summarize([0.0])
            ),
            exposure_similarity=(
                summarize(exposure_sims) if exposure_sims else summarize([0.0])
            ),
            implicit_exposure_similarity=(
                summarize(implicit_sims) if implicit_sims else summarize([0.0])
            ),
        )
