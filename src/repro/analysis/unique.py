"""Unique-node case study (paper §5.1).

A node is *unique* iff its (normalized) URL occurs in exactly one tree of
the whole dataset, ignoring depth — the "needle in the haystack" a study
of a novel phenomenon would have to find.  The paper reports that 24% of
all nodes are unique, 90% of them third-party, 37% tracking, with ad
networks hosting the top share.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..stats.descriptive import Summary, ratio, safe_mean, summarize
from ..web.resources import ResourceType
from .dataset import AnalysisDataset


@dataclass(frozen=True)
class UniqueNodeReport:
    """§5.1 headline numbers."""

    total_nodes: int
    unique_nodes: int
    unique_share: float
    tracking_share: float
    third_party_share: float
    depth: Summary
    depth_one_share: float
    type_shares: Dict[ResourceType, float]
    top_hosting_sites: List[Tuple[str, float]]
    mean_unique_share_per_tree: float


class UniqueNodeAnalyzer:
    """Identifies and characterizes unique nodes across the dataset."""

    def analyze(self, dataset: AnalysisDataset, top_sites: int = 5) -> UniqueNodeReport:
        # Occurrence counting is dataset-global and tree-granular: a key
        # seen in two trees of the same page is not unique, nor is a key
        # seen on two different pages.
        occurrences: Counter = Counter()
        for entry in dataset:
            for node in entry.comparison.nodes():
                occurrences[node.key] += node.presence_count
        unique_keys = {key for key, count in occurrences.items() if count == 1}

        total = 0
        unique_total = 0
        tracking = 0
        third_party = 0
        depths: List[float] = []
        depth_one = 0
        type_counts: Counter = Counter()
        site_counts: Counter = Counter()
        per_tree_unique: List[float] = []
        for entry in dataset:
            comparison = entry.comparison
            for node in comparison.nodes():
                total += 1
                if node.key not in unique_keys:
                    continue
                unique_total += 1
                if node.is_tracking:
                    tracking += 1
                if node.is_third_party:
                    third_party += 1
                depths.append(float(node.min_depth))
                if node.min_depth == 1:
                    depth_one += 1
                type_counts[node.resource_type] += 1
                site = _site_of_key(node.key)
                if site is not None:
                    site_counts[site] += 1
            for tree in comparison.tree_list():
                keys = tree.keys()
                if keys:
                    per_tree_unique.append(
                        sum(1 for key in keys if key in unique_keys) / len(keys)
                    )
        type_shares = {
            rtype: count / unique_total
            for rtype, count in type_counts.most_common()
        } if unique_total else {}
        top_hosts = [
            (site, count / unique_total)
            for site, count in site_counts.most_common(top_sites)
        ] if unique_total else []
        return UniqueNodeReport(
            total_nodes=total,
            unique_nodes=unique_total,
            unique_share=ratio(unique_total, total),
            tracking_share=ratio(tracking, unique_total),
            third_party_share=ratio(third_party, unique_total),
            depth=summarize(depths) if depths else summarize([0.0]),
            depth_one_share=ratio(depth_one, unique_total),
            type_shares=type_shares,
            top_hosting_sites=top_hosts,
            mean_unique_share_per_tree=safe_mean(per_tree_unique),
        )


def _site_of_key(key: str) -> str:
    from ..web import psl

    scheme_sep = key.find("://")
    if scheme_sep < 0:
        return None  # type: ignore[return-value]
    host = key[scheme_sep + 3 :]
    for stop in ("/", "?", "#"):
        index = host.find(stop)
        if index >= 0:
            host = host[:index]
    return psl.registrable_domain(host)
