"""Children statistics (paper §4.2, Figures 4 and 8).

How trees grow: how many children nodes have per depth, how the
similarity of children/parents develops with depth, and the relation
between a node's number of children and its child similarity (Wilcoxon).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..stats.descriptive import Summary, safe_mean, summarize
from ..stats.nonparametric import TestResult, wilcoxon_signed_rank
from .dataset import AnalysisDataset


@dataclass(frozen=True)
class ChildCountStats:
    """§4.2 headline child counts."""

    per_node: Summary
    per_page_root: Summary
    share_with_at_most_one_child_beyond_root: float


@dataclass(frozen=True)
class DepthSimilarityPoint:
    """Mean similarity of children and parents at one depth (Fig 4/7)."""

    depth: int
    child_similarity: float
    parent_similarity: float
    node_count: int


class ChildrenAnalyzer:
    """Computes child-count and child-similarity statistics."""

    # -- counts (Figure 8, §4.2) ------------------------------------------------

    def child_counts(self, dataset: AnalysisDataset) -> ChildCountStats:
        per_node: List[float] = []
        per_root: List[float] = []
        beyond_root_total = 0
        beyond_root_sparse = 0
        for entry in dataset:
            for tree in entry.comparison.tree_list():
                per_root.append(float(len(tree.root.children)))
                for node in tree.nodes():
                    count = len(node.children)
                    per_node.append(float(count))
                    beyond_root_total += 1
                    if count <= 1:
                        beyond_root_sparse += 1
        return ChildCountStats(
            per_node=summarize(per_node) if per_node else summarize([0.0]),
            per_page_root=summarize(per_root) if per_root else summarize([0.0]),
            share_with_at_most_one_child_beyond_root=(
                beyond_root_sparse / beyond_root_total if beyond_root_total else 0.0
            ),
        )

    def children_per_depth(
        self, dataset: AnalysisDataset, combine_after: int = 20, with_children_only: bool = False
    ) -> Dict[int, Summary]:
        """Figure 8: distribution of child counts per node depth."""
        buckets: Dict[int, List[float]] = defaultdict(list)
        for entry in dataset:
            for tree in entry.comparison.tree_list():
                for node in tree.nodes():
                    count = len(node.children)
                    if with_children_only and count == 0:
                        continue
                    bucket = min(node.depth, combine_after)
                    buckets[bucket].append(float(count))
        return {depth: summarize(values) for depth, values in sorted(buckets.items())}

    # -- similarity vs depth (Figure 4) ------------------------------------------

    def similarity_by_depth(
        self, dataset: AnalysisDataset, combine_after: int = 4
    ) -> List[DepthSimilarityPoint]:
        """Mean child/parent similarity per depth; deep levels combined."""
        child_values: Dict[int, List[float]] = defaultdict(list)
        parent_values: Dict[int, List[float]] = defaultdict(list)
        for node in dataset.iter_nodes():
            bucket = min(node.min_depth, combine_after)
            if any(view.child_count > 0 for view in node.present_views()):
                child_values[bucket].append(node.child_similarity())
            if node.min_depth >= 1:
                parent_values[bucket].append(node.parent_similarity())
        points = []
        for depth in sorted(set(child_values) | set(parent_values)):
            points.append(
                DepthSimilarityPoint(
                    depth=depth,
                    child_similarity=safe_mean(child_values.get(depth, [])),
                    parent_similarity=safe_mean(parent_values.get(depth, [])),
                    node_count=len(child_values.get(depth, []))
                    + len(parent_values.get(depth, [])),
                )
            )
        return points

    # -- child count vs similarity (§4.2 Wilcoxon) ---------------------------------

    def child_count_vs_similarity(
        self, dataset: AnalysisDataset
    ) -> Tuple[TestResult, float, float]:
        """Wilcoxon test relating the number of children to child similarity.

        Pairs each node's normalized child count with its similarity; the
        paper reports significance (nodes with many children load more
        varying children).  Also returns mean similarity for small (≤1)
        vs. large (>1) child sets for interpretability.
        """
        counts: List[float] = []
        similarities: List[float] = []
        small: List[float] = []
        large: List[float] = []
        for node in dataset.iter_nodes():
            views = node.present_views()
            mean_children = sum(view.child_count for view in views) / len(views)
            if mean_children == 0:
                continue
            similarity = node.child_similarity()
            counts.append(min(mean_children, 10.0) / 10.0)
            similarities.append(similarity)
            if mean_children <= 1.0:
                small.append(similarity)
            else:
                large.append(similarity)
        if not counts:
            raise ValueError("no nodes with children in dataset")
        test = wilcoxon_signed_rank(counts, similarities)
        return test, safe_mean(small), safe_mean(large)
