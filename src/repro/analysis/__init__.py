"""Tree-comparison analyses: the paper's evaluation machinery.

The pipeline: build an :class:`~repro.analysis.dataset.AnalysisDataset`
from a measurement store, then feed it to the analyzers —
:class:`TreeStatsAnalyzer` (Table 2/Figs 1+3), :class:`DepthAnalyzer`
(Table 3), :class:`HorizontalAnalyzer`/:class:`VerticalAnalyzer`
(§4.1-4.2, Figs 2+4), :class:`ResourceTypeAnalyzer` (Table 4, Figs 5+7),
:class:`PartyAnalyzer` (§4.3), :class:`ProfileAnalyzer` (Tables 5+6),
and the case studies (§5.1-5.3, Appendix F).
"""

from .categories import (
    HIGH_THRESHOLD,
    MEDIUM_THRESHOLD,
    SimilarityCategory,
    categorize,
    category_shares,
)
from .children import ChildCountStats, ChildrenAnalyzer, DepthSimilarityPoint
from .comparability import ComparabilityReport, StudyComparator, StudySummary
from .comparison import NodeComparison, NodeView, PageComparison
from .cookies_analysis import CookieAnalyzer, CookieReport
from .dataset import AnalysisDataset, PageEntry, ShardFold, StreamingDataset, fold_shard_store
from .depth import DepthAnalyzer, DepthSimilarityRow, TABLE3_FILTERS
from .headers import HeaderObservation, HeaderReport, SECURITY_HEADERS, SecurityHeaderAnalyzer
from .horizontal import (
    ChildSimilarityRecord,
    HorizontalAnalyzer,
    HorizontalResult,
    page_child_similarity,
)
from .jaccard import jaccard, overlap_count, pairwise_jaccard_matrix, pairwise_mean_jaccard
from .parties import PartyAnalyzer, PartyComparisonResult, PartyProfileStats
from .popularity import BucketRow, PopularityAnalyzer, PopularityReport
from .profiles import (
    PairwiseShare,
    ProfileAnalyzer,
    ProfilePairComparison,
    ProfileTreeTotals,
)
from .replication import ReplicationAnalyzer, ReplicationReport
from .resource_types import FIGURE5_TYPES, ResourceTypeAnalyzer, TypeChainRow
from .tracking import TrackingAnalyzer, TrackingReport
from .treestats import DepthTypeComposition, TreeOverview, TreeStatsAnalyzer
from .trust import ImplicitTrustAnalyzer, TrustReport
from .unique import UniqueNodeAnalyzer, UniqueNodeReport
from .variance import (
    CoverageCurve,
    FluctuationScore,
    VarianceAnalyzer,
    bootstrap_ci,
)
from .vertical import (
    ChainRecord,
    ChainStatistics,
    VerticalAnalyzer,
    page_parent_similarity,
)

__all__ = [
    "AnalysisDataset",
    "BucketRow",
    "ChainRecord",
    "ChainStatistics",
    "ChildCountStats",
    "ChildSimilarityRecord",
    "ChildrenAnalyzer",
    "ComparabilityReport",
    "CookieAnalyzer",
    "StudyComparator",
    "StudySummary",
    "CookieReport",
    "DepthAnalyzer",
    "DepthSimilarityPoint",
    "DepthSimilarityRow",
    "DepthTypeComposition",
    "FIGURE5_TYPES",
    "HeaderObservation",
    "HeaderReport",
    "SECURITY_HEADERS",
    "SecurityHeaderAnalyzer",
    "HIGH_THRESHOLD",
    "HorizontalAnalyzer",
    "HorizontalResult",
    "MEDIUM_THRESHOLD",
    "NodeComparison",
    "NodeView",
    "PageComparison",
    "PageEntry",
    "ShardFold",
    "StreamingDataset",
    "PairwiseShare",
    "PartyAnalyzer",
    "PartyComparisonResult",
    "PartyProfileStats",
    "PopularityAnalyzer",
    "PopularityReport",
    "ProfileAnalyzer",
    "ProfilePairComparison",
    "ProfileTreeTotals",
    "ReplicationAnalyzer",
    "ReplicationReport",
    "ResourceTypeAnalyzer",
    "SimilarityCategory",
    "TABLE3_FILTERS",
    "TrackingAnalyzer",
    "TrackingReport",
    "TreeOverview",
    "TreeStatsAnalyzer",
    "ImplicitTrustAnalyzer",
    "TrustReport",
    "TypeChainRow",
    "CoverageCurve",
    "FluctuationScore",
    "UniqueNodeAnalyzer",
    "UniqueNodeReport",
    "VarianceAnalyzer",
    "bootstrap_ci",
    "categorize",
    "fold_shard_store",
    "category_shares",
    "jaccard",
    "overlap_count",
    "page_child_similarity",
    "page_parent_similarity",
    "pairwise_jaccard_matrix",
    "pairwise_mean_jaccard",
]
