"""Plain-text rendering of tables, histograms, and heatmaps."""

from .histogram import render_bar_chart, render_heatmap, render_histogram, render_series
from .tables import (
    format_value,
    percent,
    render_kv,
    render_markdown_table,
    render_table,
)

__all__ = [
    "format_value",
    "percent",
    "render_bar_chart",
    "render_heatmap",
    "render_histogram",
    "render_kv",
    "render_markdown_table",
    "render_series",
    "render_table",
]
