"""ASCII histograms and heatmaps for the paper's figures."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

_BAR = "#"
_SHADES = " .:-=+*#%@"


def render_bar_chart(
    data: Mapping[object, float],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Render label → value as horizontal bars."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not data:
        lines.append("  (no data)")
        return "\n".join(lines)
    label_width = max(len(str(label)) for label in data)
    peak = max(abs(v) for v in data.values()) or 1.0
    for label, value in data.items():
        bar = _BAR * max(0, round(abs(value) / peak * width))
        lines.append(
            f"  {str(label).ljust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float],
    bins: int = 10,
    lo: float = 0.0,
    hi: float = 1.0,
    title: str = "",
    width: int = 40,
) -> str:
    """Bin scalar values into a fixed range and render the distribution."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    counts = [0] * bins
    span = hi - lo
    for value in values:
        index = int((value - lo) / span * bins)
        index = min(max(index, 0), bins - 1)
        counts[index] += 1
    total = sum(counts) or 1
    data: Dict[str, float] = {}
    for index, count in enumerate(counts):
        upper = lo + span * (index + 1) / bins
        data[f"<= {upper:.2f}"] = count / total
    return render_bar_chart(data, title=title, width=width, value_format="{:.2%}")


def render_heatmap(
    cells: Mapping[Tuple[int, int], int],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    max_axis: int = 24,
) -> str:
    """Render (x, y) → count as a shaded character grid (Figure 1 style)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not cells:
        lines.append("  (no data)")
        return "\n".join(lines)
    xs = sorted({min(x, max_axis) for x, _ in cells})
    ys = sorted({min(y, max_axis) for _, y in cells})
    grid: Dict[Tuple[int, int], int] = {}
    for (x, y), count in cells.items():
        key = (min(x, max_axis), min(y, max_axis))
        grid[key] = grid.get(key, 0) + count
    peak = max(grid.values()) or 1
    lines.append(f"  rows: {y_label} (desc), cols: {x_label} (asc), shade = count")
    for y in reversed(ys):
        row_chars = []
        for x in xs:
            count = grid.get((x, y), 0)
            shade = _SHADES[min(len(_SHADES) - 1, round(count / peak * (len(_SHADES) - 1)))]
            row_chars.append(shade)
        lines.append(f"  {y:>3} |{''.join(row_chars)}")
    lines.append(f"      +{'-' * len(xs)}")
    axis = "".join(str(x % 10) for x in xs)
    lines.append(f"       {axis}")
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Mapping[object, float]],
    title: str = "",
) -> str:
    """Render multiple named series over a shared x-axis as columns."""
    lines: List[str] = []
    if title:
        lines.append(title)
    keys: List[object] = []
    for values in series.values():
        for key in values:
            if key not in keys:
                keys.append(key)
    names = list(series)
    header = "  x".ljust(8) + "".join(name.rjust(14) for name in names)
    lines.append(header)
    for key in keys:
        row = f"  {str(key)}".ljust(8)
        for name in names:
            value = series[name].get(key)
            row += (f"{value:.3f}" if value is not None else "-").rjust(14)
        lines.append(row)
    return "\n".join(lines)
