"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's tables report;
this module renders them as aligned ASCII tables (and, on request, as
Markdown for EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

Cell = object  # anything with a sensible str()


def format_value(value: Cell, float_digits: int = 2) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    float_digits: int = 2,
) -> str:
    """Render an aligned ASCII table."""
    text_rows: List[List[str]] = [
        [format_value(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    float_digits: int = 2,
) -> str:
    """Render a GitHub-flavoured Markdown table."""
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(format_value(cell, float_digits) for cell in row) + " |"
        )
    return "\n".join(lines)


def render_kv(pairs: Sequence[Sequence[Cell]], title: Optional[str] = None) -> str:
    """Render key/value pairs, one per line."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(str(key)) for key, _ in pairs), default=0)
    for key, value in pairs:
        lines.append(f"  {str(key).ljust(width)} : {format_value(value)}")
    return "\n".join(lines)


def percent(value: float, digits: int = 0) -> str:
    """Format a ratio as a percentage string."""
    return f"{value * 100:.{digits}f}%"
