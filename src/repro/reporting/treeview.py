"""ASCII rendering of dependency trees (for the CLI and examples)."""

from __future__ import annotations

from typing import List, Optional

from ..trees.tree import DependencyTree
from ..trees.node import TreeNode


def _annotations(node: TreeNode) -> str:
    tags = [node.resource_type.value]
    tags.append("3p" if node.is_third_party else "1p")
    if node.is_tracking:
        tags.append("tracking")
    if node.during_interaction:
        tags.append("lazy")
    return f" [{', '.join(tags)}]"


def render_tree(
    tree: DependencyTree,
    max_depth: Optional[int] = None,
    max_children: int = 12,
    annotate: bool = True,
) -> str:
    """Render ``tree`` as an indented ASCII hierarchy.

    ``max_depth`` truncates deep branches; ``max_children`` elides long
    sibling lists (an ellipsis line shows how many were hidden).
    """
    lines: List[str] = [f"{tree.page_url}  ({tree.profile_name}, {tree.node_count} nodes)"]

    def walk(node: TreeNode, prefix: str) -> None:
        children = node.children
        shown = children[:max_children]
        hidden = len(children) - len(shown)
        for index, child in enumerate(shown):
            is_last = index == len(shown) - 1 and hidden == 0
            connector = "`-- " if is_last else "|-- "
            annotation = _annotations(child) if annotate else ""
            lines.append(f"{prefix}{connector}{child.key}{annotation}")
            if max_depth is None or child.depth < max_depth:
                extension = "    " if is_last else "|   "
                walk(child, prefix + extension)
        if hidden > 0:
            lines.append(f"{prefix}`-- ... {hidden} more")

    walk(tree.root, "")
    return "\n".join(lines)


def render_tree_summary(tree: DependencyTree) -> str:
    """A one-line structural summary."""
    return (
        f"{tree.page_url}: {tree.node_count} nodes, depth {tree.max_depth}, "
        f"breadth {tree.breadth}, {len(tree.third_party_nodes())} third-party, "
        f"{len(tree.tracking_nodes())} tracking"
    )
