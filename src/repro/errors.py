"""Exception hierarchy for the ``repro`` package.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package-level failures with a single ``except`` clause
while still letting programming errors (``TypeError`` and friends) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidURLError(ReproError, ValueError):
    """Raised when a string cannot be parsed as a URL."""


class BlueprintError(ReproError):
    """Raised when a site/page blueprint is structurally invalid."""


class CrawlError(ReproError):
    """Raised when the crawl framework encounters an unrecoverable problem."""


class VisitFailed(CrawlError):
    """Raised by the browser engine when a page visit fails (e.g. timeout).

    The crawler catches this and records the visit as unsuccessful; the
    analysis then drops pages that were not crawled by all profiles, exactly
    as the paper does.
    """

    def __init__(self, url: str, reason: str) -> None:
        super().__init__(f"visit to {url} failed: {reason}")
        self.url = url
        self.reason = reason


class TransientCrawlError(CrawlError):
    """Base for *retryable* visit failures.

    Subclasses must carry a machine-readable ``failure_reason`` naming a
    fault from :mod:`repro.web.faults` (enforced by lint rule ERR002):
    the retry layer dispatches on the reason, so a transient error
    without one would be retried blindly — or not at all.
    """

    #: The fault-taxonomy reason; subclasses set it (class attribute or
    #: per instance in ``__init__``).
    failure_reason: str = ""


class StorageError(CrawlError):
    """Raised when the measurement store rejects an operation."""


class UnknownFrameError(CrawlError, KeyError):
    """Raised when a frame id is not present in a visit's frame tree.

    Also derives from ``KeyError`` so mapping-style callers
    (``FrameTree.get``/``create_subframe``) can keep catching the lookup
    failure they historically got.
    """

    def __init__(self, frame_id: int) -> None:
        super().__init__(f"unknown frame: {frame_id}")
        self.frame_id = frame_id

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes its argument; show the plain message.
        return Exception.__str__(self)


class FilterParseError(ReproError, ValueError):
    """Raised when an Adblock-Plus filter line cannot be parsed."""


class TreeConstructionError(ReproError):
    """Raised when a dependency tree cannot be built from visit records."""


class AnalysisError(ReproError):
    """Raised when an analysis routine receives inconsistent input."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is misconfigured."""


class LintError(ReproError):
    """Raised when ``repro.devtools.lint`` is misused (bad rule id, path)."""


class ObsError(ReproError):
    """Raised when the observability layer is misconfigured.

    Bad histogram bucket edges, conflicting metric registrations, and
    malformed trace files all land here rather than silently producing
    garbage telemetry — mismeasured measurements are worse than none.
    """


class LedgerError(ObsError):
    """Raised when the run ledger cannot append, load, or diff a record.

    Malformed index lines, unknown or ambiguous run-id references, and
    records whose schema version this code cannot read all land here —
    a provenance registry that silently skips what it cannot parse would
    defeat its own purpose.
    """


class BundleError(ReproError):
    """Raised when a crawl bundle cannot be recorded, opened, or replayed.

    Covers structural problems (missing manifest, unknown format version,
    schema-version mismatch) and integrity failures (a member whose
    payload does not hash to its manifest digest) — a bundle that fails
    verification must never silently stand in for the crawl it archives.
    """
