"""Filter-list matching: is a request a tracking request?

:class:`FilterList` evaluates a URL (plus request context) against the
parsed filters with EasyList semantics: a blocking filter must match and
no exception filter may match.  Filters anchored to a domain (``||``)
are indexed by host suffix so that the common case — checking a URL
against a large list — touches only a handful of candidate filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from ..web import psl
from ..web.resources import ResourceType
from .parser import Filter, parse_filter_list


@dataclass(frozen=True)
class MatchContext:
    """Everything besides the URL that filter options may consult."""

    resource_type: ResourceType = ResourceType.OTHER
    page_url: Optional[str] = None

    @property
    def page_host(self) -> Optional[str]:
        if self.page_url is None:
            return None
        return (urlsplit(self.page_url).hostname or "").lower() or None


@dataclass(frozen=True)
class MatchResult:
    """The verdict for one URL."""

    blocked: bool
    matched_filter: Optional[Filter] = None
    exception_filter: Optional[Filter] = None


class FilterList:
    """A compiled filter list with domain-anchored indexing."""

    def __init__(self, filters: Sequence[Filter]) -> None:
        self._anchored_blocking: Dict[str, List[Filter]] = {}
        self._generic_blocking: List[Filter] = []
        self._anchored_exceptions: Dict[str, List[Filter]] = {}
        self._generic_exceptions: List[Filter] = []
        for flt in filters:
            if flt.is_exception:
                anchored, generic = self._anchored_exceptions, self._generic_exceptions
            else:
                anchored, generic = self._anchored_blocking, self._generic_blocking
            if flt.anchor_domain:
                anchored.setdefault(flt.anchor_domain, []).append(flt)
            else:
                generic.append(flt)
        self._size = len(filters)

    def __len__(self) -> int:
        return self._size

    @classmethod
    def from_text(cls, text: str) -> "FilterList":
        """Compile a filter list document."""
        return cls(parse_filter_list(text))

    # -- matching ----------------------------------------------------------

    def match(self, url: str, context: Optional[MatchContext] = None) -> MatchResult:
        """Full evaluation: blocking filters, then exceptions."""
        context = context or MatchContext()
        blocking = self._first_match(
            url, context, self._anchored_blocking, self._generic_blocking
        )
        if blocking is None:
            return MatchResult(blocked=False)
        exception = self._first_match(
            url, context, self._anchored_exceptions, self._generic_exceptions
        )
        if exception is not None:
            return MatchResult(blocked=False, matched_filter=blocking, exception_filter=exception)
        return MatchResult(blocked=True, matched_filter=blocking)

    def is_tracking(
        self,
        url: str,
        resource_type: ResourceType = ResourceType.OTHER,
        page_url: Optional[str] = None,
    ) -> bool:
        """The paper's classifier: URL on the list → tracking request."""
        return self.match(
            url, MatchContext(resource_type=resource_type, page_url=page_url)
        ).blocked

    # -- internals ---------------------------------------------------------

    def _first_match(
        self,
        url: str,
        context: MatchContext,
        anchored: Dict[str, List[Filter]],
        generic: List[Filter],
    ) -> Optional[Filter]:
        host = (urlsplit(url).hostname or "").lower()
        for candidate_domain in _host_suffixes(host):
            for flt in anchored.get(candidate_domain, ()):
                if self._filter_matches(flt, url, host, context):
                    return flt
        for flt in generic:
            if self._filter_matches(flt, url, host, context):
                return flt
        return None

    def _filter_matches(
        self, flt: Filter, url: str, host: str, context: MatchContext
    ) -> bool:
        options = flt.options
        if not options.allows_type(context.resource_type):
            return False
        if options.third_party is not None:
            page_host = context.page_host
            is_third = page_host is not None and not psl.same_site(host, page_host)
            if not options.allows_party(is_third):
                return False
        if not options.allows_page_domain(context.page_host):
            return False
        return flt.matches_url(url)


def _host_suffixes(host: str) -> Tuple[str, ...]:
    """All dot-suffixes of a host (``a.b.c`` → ``a.b.c``, ``b.c``, ``c``)."""
    if not host:
        return ()
    labels = host.split(".")
    return tuple(".".join(labels[i:]) for i in range(len(labels)))
