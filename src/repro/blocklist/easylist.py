"""The synthetic EasyList covering the synthetic tracker ecosystem.

A real EasyList mixes domain-anchored rules for known ad/tracking hosts
with generic path patterns (``/pixel.gif``, ``&uid=``) and a sprinkling of
exception rules.  :func:`generate_easylist` emits the same mix for a given
:class:`~repro.web.entities.Ecosystem`, so the tracking classification in
the analysis exercises every part of the matcher.
"""

from __future__ import annotations

from typing import List

from ..web.entities import Ecosystem, EntityCategory
from .matcher import FilterList

_HEADER = "[Adblock Plus 2.0]"

#: Generic path/query patterns real lists carry; these also hit the
#: synthetic ecosystem's pixel, sync, and impression endpoints.
_GENERIC_RULES = (
    "/pixel.gif?",
    "/impression?",
    "/sync?partner=",
    "/collect?cid=",
)


def generate_easylist(ecosystem: Ecosystem) -> str:
    """Render the filter-list document for ``ecosystem``."""
    lines: List[str] = [
        _HEADER,
        "! Title: Synthetic EasyList for the reproduction experiment",
        "! Matches the tracking-category entities of the synthetic web.",
    ]
    lines.append("! --- domain-anchored rules ---")
    for entity in ecosystem.entities:
        if not entity.is_tracking:
            continue
        for domain in entity.domains:
            if entity.category is EntityCategory.ANALYTICS:
                # Analytics hosts are blocked only in third-party context,
                # exercising the $third-party option.
                lines.append(f"||{domain}^$third-party")
            else:
                lines.append(f"||{domain}^")
    lines.append("! --- generic rules ---")
    lines.extend(_GENERIC_RULES)
    lines.append("! --- exceptions ---")
    # Consent-platform scripts are commonly allowlisted so banners render.
    for entity in ecosystem.by_category(EntityCategory.CONSENT):
        lines.append(f"@@||{entity.primary_domain}/cmp/stub.js$script")
    return "\n".join(lines) + "\n"


def generate_easyprivacy(ecosystem: Ecosystem) -> str:
    """Render an EasyPrivacy-style companion list.

    EasyPrivacy targets tracking/analytics rather than ads; the paper's
    §6 notes that combining lists changes what counts as a tracker.  The
    synthetic variant covers tracker and analytics entities only, plus
    fingerprinting-style generic endpoints EasyList leaves alone.
    """
    lines: List[str] = [
        _HEADER,
        "! Title: Synthetic EasyPrivacy for the reproduction experiment",
    ]
    for entity in ecosystem.entities:
        if entity.category in (EntityCategory.TRACKER, EntityCategory.ANALYTICS):
            for domain in entity.domains:
                lines.append(f"||{domain}^")
        elif entity.category is EntityCategory.SOCIAL:
            # Social-button telemetry: EasyPrivacy territory, not EasyList's.
            lines.append(f"||{entity.primary_domain}/api/counts$xmlhttprequest")
            lines.append(f"||{entity.primary_domain}/sdk.js$script,third-party")
        elif entity.category is EntityCategory.VIDEO:
            lines.append(f"||{entity.primary_domain}/live^$websocket")
    lines.append("/viewability.js")
    lines.append("/sdk/report?")
    return "\n".join(lines) + "\n"


def build_filter_list(ecosystem: Ecosystem) -> FilterList:
    """Generate and compile the synthetic EasyList in one step."""
    return FilterList.from_text(generate_easylist(ecosystem))


def build_easyprivacy_list(ecosystem: Ecosystem) -> FilterList:
    """Generate and compile the synthetic EasyPrivacy in one step."""
    return FilterList.from_text(generate_easyprivacy(ecosystem))


def build_combined_list(ecosystem: Ecosystem) -> FilterList:
    """EasyList + EasyPrivacy combined (the multi-list setup of §6)."""
    return FilterList.from_text(
        generate_easylist(ecosystem) + generate_easyprivacy(ecosystem)
    )
