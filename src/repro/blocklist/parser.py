"""Parsing of Adblock-Plus filter syntax (the EasyList format).

The paper classifies a request as *tracking* when its URL matches EasyList.
We implement the practically relevant subset of ABP syntax so the
classification runs through real filter-matching code:

* comments (``!``) and the ``[Adblock Plus 2.0]`` header;
* blocking filters: substring patterns with ``*`` wildcards, the ``^``
  separator placeholder, ``||`` domain anchors and ``|`` start/end anchors;
* exception filters (``@@`` prefix);
* options after ``$``: ``third-party``/``~third-party``, resource-type
  options (``script``, ``image``, ``stylesheet``, ``xmlhttprequest``,
  ``subdocument``, ``websocket``, ``ping``, ``media``, ``font``, ``other``)
  and ``domain=a.com|~b.com``;
* element-hiding rules (``##``/``#@#``) are recognized and skipped — they
  affect rendering, not requests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from ..errors import FilterParseError
from ..web.resources import ResourceType

#: ABP type option name → our resource types.
_TYPE_OPTIONS = {
    "script": (ResourceType.SCRIPT,),
    "image": (ResourceType.IMAGE, ResourceType.IMAGESET),
    "stylesheet": (ResourceType.STYLESHEET,),
    "xmlhttprequest": (ResourceType.XHR,),
    "subdocument": (ResourceType.SUB_FRAME,),
    "document": (ResourceType.MAIN_FRAME,),
    "websocket": (ResourceType.WEBSOCKET,),
    "ping": (ResourceType.BEACON,),
    "beacon": (ResourceType.BEACON,),
    "media": (ResourceType.MEDIA,),
    "font": (ResourceType.FONT,),
    "other": (ResourceType.OTHER, ResourceType.CSP_REPORT),
}


@dataclass(frozen=True)
class FilterOptions:
    """Parsed ``$option`` constraints for one filter."""

    third_party: Optional[bool] = None
    include_types: FrozenSet[ResourceType] = frozenset()
    exclude_types: FrozenSet[ResourceType] = frozenset()
    include_domains: Tuple[str, ...] = ()
    exclude_domains: Tuple[str, ...] = ()

    def allows_type(self, resource_type: ResourceType) -> bool:
        if self.include_types and resource_type not in self.include_types:
            return False
        if resource_type in self.exclude_types:
            return False
        return True

    def allows_party(self, is_third_party: bool) -> bool:
        if self.third_party is None:
            return True
        return self.third_party == is_third_party

    def allows_page_domain(self, page_domain: Optional[str]) -> bool:
        if page_domain is None:
            return not self.include_domains
        page_domain = page_domain.lower()
        if any(_domain_matches(page_domain, dom) for dom in self.exclude_domains):
            return False
        if self.include_domains:
            return any(_domain_matches(page_domain, dom) for dom in self.include_domains)
        return True


def _domain_matches(host: str, rule_domain: str) -> bool:
    return host == rule_domain or host.endswith("." + rule_domain)


@dataclass(frozen=True)
class Filter:
    """One compiled URL filter."""

    raw: str
    pattern: str
    is_exception: bool
    options: FilterOptions
    regex: "re.Pattern[str]" = field(repr=False, compare=False, default=None)  # type: ignore[assignment]
    anchor_domain: Optional[str] = None

    def matches_url(self, url: str) -> bool:
        return self.regex.search(url) is not None


def parse_filter(line: str) -> Optional[Filter]:
    """Parse one filter line; returns ``None`` for non-request rules.

    Raises :class:`~repro.errors.FilterParseError` for malformed options.
    """
    line = line.strip()
    if not line or line.startswith("!") or line.startswith("["):
        return None
    if "##" in line or "#@#" in line or "#?#" in line:
        return None  # element hiding — out of scope for request blocking
    is_exception = line.startswith("@@")
    body = line[2:] if is_exception else line
    pattern, _, options_text = body.partition("$")
    if not pattern:
        raise FilterParseError(f"empty pattern in filter: {line!r}")
    options = _parse_options(options_text, line)
    regex = re.compile(_pattern_to_regex(pattern))
    return Filter(
        raw=line,
        pattern=pattern,
        is_exception=is_exception,
        options=options,
        regex=regex,
        anchor_domain=_extract_anchor_domain(pattern),
    )


def parse_filter_list(text: str) -> List[Filter]:
    """Parse a full list document; bad lines raise, non-rules are skipped."""
    filters = []
    for line in text.splitlines():
        parsed = parse_filter(line)
        if parsed is not None:
            filters.append(parsed)
    return filters


def _parse_options(options_text: str, line: str) -> FilterOptions:
    if not options_text:
        return FilterOptions()
    third_party: Optional[bool] = None
    include_types: set = set()
    exclude_types: set = set()
    include_domains: List[str] = []
    exclude_domains: List[str] = []
    for option in options_text.split(","):
        option = option.strip()
        if not option:
            continue
        lowered = option.lower()
        if lowered == "third-party":
            third_party = True
        elif lowered == "~third-party":
            third_party = False
        elif lowered.startswith("domain="):
            for domain in option[len("domain=") :].split("|"):
                domain = domain.strip().lower()
                if domain.startswith("~"):
                    exclude_domains.append(domain[1:])
                elif domain:
                    include_domains.append(domain)
        elif lowered.startswith("~") and lowered[1:] in _TYPE_OPTIONS:
            exclude_types.update(_TYPE_OPTIONS[lowered[1:]])
        elif lowered in _TYPE_OPTIONS:
            include_types.update(_TYPE_OPTIONS[lowered])
        else:
            raise FilterParseError(f"unsupported option {option!r} in {line!r}")
    return FilterOptions(
        third_party=third_party,
        include_types=frozenset(include_types),
        exclude_types=frozenset(exclude_types),
        include_domains=tuple(include_domains),
        exclude_domains=tuple(exclude_domains),
    )


def _pattern_to_regex(pattern: str) -> str:
    """Translate an ABP pattern into a Python regex (standard translation)."""
    # Handle anchors before escaping.
    start_domain_anchor = pattern.startswith("||")
    if start_domain_anchor:
        pattern = pattern[2:]
    start_anchor = pattern.startswith("|")
    if start_anchor:
        pattern = pattern[1:]
    end_anchor = pattern.endswith("|")
    if end_anchor:
        pattern = pattern[:-1]

    out: List[str] = []
    for char in pattern:
        if char == "*":
            out.append(".*")
        elif char == "^":
            # Separator: anything but letters, digits, or _-.% — or the end.
            out.append(r"(?:[^\w\-.%]|$)")
        else:
            out.append(re.escape(char))
    body = "".join(out)
    if start_domain_anchor:
        body = r"^[a-z][a-z0-9+\-.]*://(?:[^/?#]*\.)?" + body
    elif start_anchor:
        body = "^" + body
    if end_anchor:
        body += "$"
    return body


def _extract_anchor_domain(pattern: str) -> Optional[str]:
    """The literal host prefix of a ``||domain`` pattern, for indexing."""
    if not pattern.startswith("||"):
        return None
    rest = pattern[2:]
    for index, char in enumerate(rest):
        if char in "^/*|?":
            rest = rest[:index]
            break
    return rest.lower() or None
