"""Adblock-Plus filter-list engine and the synthetic EasyList.

Public API: :func:`~repro.blocklist.parser.parse_filter_list`,
:class:`~repro.blocklist.matcher.FilterList`, and
:func:`~repro.blocklist.easylist.build_filter_list` for the synthetic web.
"""

from .easylist import (
    build_combined_list,
    build_easyprivacy_list,
    build_filter_list,
    generate_easylist,
    generate_easyprivacy,
)
from .matcher import FilterList, MatchContext, MatchResult
from .parser import Filter, FilterOptions, parse_filter, parse_filter_list

__all__ = [
    "Filter",
    "FilterList",
    "FilterOptions",
    "MatchContext",
    "MatchResult",
    "build_combined_list",
    "build_easyprivacy_list",
    "build_filter_list",
    "generate_easyprivacy",
    "generate_easylist",
    "parse_filter",
    "parse_filter_list",
]
