"""Developer tooling for the ``repro`` package.

Nothing in this subpackage participates in a measurement: it exists to
*protect* the measurement code.  ``repro.devtools.lint`` is the static
analysis pass enforcing the package's determinism and error-handling
invariants, and :mod:`repro.devtools.clock` holds the one sanctioned
wall-clock so that timing in CLI glue stays injectable and testable.
"""

from __future__ import annotations

from .clock import Clock, FakeClock, Stopwatch, SystemClock

__all__ = ["Clock", "FakeClock", "Stopwatch", "SystemClock"]
