"""Command-line front end: ``python -m repro.devtools.lint`` / ``repro-lint``.

Exit codes: 0 — clean; 1 — violations found; 2 — usage or I/O error.

The CLI always runs the two-pass driver (``program``): per-file rules
stream over the walker as before, and ``--program`` additionally runs
the whole-program rules (DET101/DET103/CONC001/CONC002) over the linked
symbol table.  Per-file parses and summaries are cached under
``.repro-lint-cache/`` keyed by content hash (``--no-cache`` opts out);
``--changed [REF]`` lints only files changed versus a git ref, which
together with the cache gives sub-second incremental runs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ...errors import LintError
from .cache import CACHE_DIR_NAME
from .framework import program_rule_summaries, rule_summaries
from .program import git_changed_files, lint_project
from .reporters import render_json, render_sarif, render_text


def _split_ids(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & invariant checker for the repro package."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        help="worker processes for the file walker (default: all cores)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default="",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=str,
        default="",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help=(
            "also run the whole-program pass (interprocedural seed "
            "provenance, shared-state and ordering rules)"
        ),
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "lint only files changed vs the given git ref (default when "
            "the flag is bare: HEAD); untracked files count as changed"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=CACHE_DIR_NAME,
        help=f"parse/summary cache directory (default: {CACHE_DIR_NAME})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash cache for this run",
    )
    parser.add_argument(
        "--no-stale-suppressions",
        action="store_true",
        help="do not report SUP002 for suppressions that no longer fire",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in rule_summaries():
            print(f"{rule_id}  {summary}")
        for rule_id, summary in program_rule_summaries():
            print(f"{rule_id}  (program) {summary}")
        print("IO001   (framework) file vanished between discovery and parse")
        print("SUP001  (framework) suppression comment without a reason")
        print("SUP002  (framework) stale suppression: rule no longer fires")
        print("SYN001  (framework) file does not parse")
        return 0

    try:
        changed = (
            git_changed_files(args.changed) if args.changed is not None else None
        )
        report = lint_project(
            args.paths,
            select=_split_ids(args.select) or None,
            ignore=_split_ids(args.ignore),
            jobs=args.jobs,
            program=args.program,
            cache_dir=None if args.no_cache else args.cache_dir,
            changed_files=changed,
            stale_check=not args.no_stale_suppressions,
        )
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    renderers = {"text": render_text, "json": render_json, "sarif": render_sarif}
    try:
        print(renderers[args.format](report.violations, report.files_checked))
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; silence the shutdown
        # flush as well and keep the exit code meaningful.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 1 if report.violations else 0
