"""Command-line front end: ``python -m repro.devtools.lint`` / ``repro-lint``.

Exit codes: 0 — clean; 1 — violations found; 2 — usage or I/O error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ...errors import LintError
from .framework import build_rules, rule_summaries
from .reporters import render_json, render_text
from .walker import lint_paths


def _split_ids(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & invariant checker for the repro package."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        help="worker processes for the file walker (default: all cores)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default="",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=str,
        default="",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in rule_summaries():
            print(f"{rule_id}  {summary}")
        print("SUP001  (framework) suppression comment without a reason")
        print("SYN001  (framework) file does not parse")
        return 0

    try:
        rules = build_rules(
            select=_split_ids(args.select) or None,
            ignore=_split_ids(args.ignore),
        )
        violations, files_checked = lint_paths(args.paths, rules=rules, jobs=args.jobs)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations, files_checked))
    return 1 if violations else 0
