"""Core of ``repro-lint``: rule registry, module context, suppressions.

A *rule* is a class with a ``rule_id`` (``DET001``-style), a one-line
``summary``, and a ``check(module)`` generator yielding
:class:`Violation` objects.  Rules register themselves with the
:func:`register` decorator; :func:`build_rules` instantiates the
registry (optionally filtered) in stable rule-id order.

Suppressions are per-line comments::

    value = time.time()  # repro: ok[DET002] operator-facing timing only

The bracket lists one or more rule ids (comma-separated); the trailing
reason is mandatory — a suppression without one does not suppress and is
itself reported as ``SUP001``.  Only real comment tokens count: the
marker inside a string literal or docstring is inert.

Four pseudo-rules are reserved for the framework itself and cannot be
registered or selected: ``SYN001`` (file does not parse), ``IO001``
(file vanished or became unreadable between discovery and parse),
``SUP001`` (suppression comment without a reason) and ``SUP002``
(stale suppression: the suppressed rule no longer fires on that line).

Rules come in two granularities.  A :class:`LintRule` sees one module at
a time; a :class:`ProgramRule` sees the whole project at once (symbol
table + call graph, see ``program``) and runs in a second pass after
every file has been parsed.  Both share the same id namespace,
suppression syntax and reporters.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from ...errors import LintError

#: Framework-reserved pseudo-rule ids (not in the registry).
SYNTAX_RULE_ID = "SYN001"
IO_RULE_ID = "IO001"
SUPPRESSION_RULE_ID = "SUP001"
STALE_SUPPRESSION_RULE_ID = "SUP002"

_RESERVED_RULE_IDS = frozenset(
    {SYNTAX_RULE_ID, IO_RULE_ID, SUPPRESSION_RULE_ID, STALE_SUPPRESSION_RULE_ID}
)

_RULE_ID_RE = re.compile(r"^[A-Z]{2,6}\d{3}$")
_SUPPRESSION_RE = re.compile(r"repro:\s*ok\[([^\]]*)\]\s*(.*)\Z")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule tripped at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: ok[...]`` comment."""

    line: int
    col: int
    rule_ids: Tuple[str, ...]
    reason: str


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        # Normalised for path-based exemptions (e.g. DET001 and rng.py).
        self.posix_path = path.replace("\\", "/")

    def module_aliases(self, module: str) -> Set[str]:
        """Local names bound to ``import module`` (including ``as`` aliases)."""
        names: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == module:
                        names.add(alias.asname or alias.name)
        return names

    def imported_from(self, module: str) -> Dict[str, str]:
        """``{local_name: original_name}`` for ``from module import ...``."""
        names: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module == module:
                for alias in node.names:
                    names[alias.asname or alias.name] = alias.name
        return names

    def imported_from_suffix(self, suffix: str) -> Dict[str, str]:
        """Like :meth:`imported_from`, matching the module's last component.

        ``from ..errors import StorageError`` and ``from repro.errors import
        StorageError`` both match suffix ``"errors"``; this is how ERR001
        recognises the package error hierarchy without cross-file analysis.
        """
        names: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.module.rsplit(".", 1)[-1] == suffix:
                    for alias in node.names:
                        names[alias.asname or alias.name] = alias.name
        return names


class LintRule:
    """Base class for lint rules.  Subclasses set ``rule_id``/``summary``."""

    rule_id: str = ""
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def flag(self, module: ModuleContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


class ProgramRule:
    """Base class for whole-program rules (see ``program``).

    ``check`` receives a :class:`~repro.devtools.lint.callgraph.ProjectIndex`
    — the project-wide symbol table and call graph — instead of a single
    module, and yields violations anywhere in the project.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, project) -> Iterator[Violation]:
        raise NotImplementedError

    def flag_at(
        self, path: str, line: int, col: int, message: str
    ) -> Violation:
        return Violation(
            path=path, line=line, col=col, rule_id=self.rule_id, message=message
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}
_PROGRAM_REGISTRY: Dict[str, Type[ProgramRule]] = {}


def _check_rule_id(rule_id: str) -> None:
    if not _RULE_ID_RE.match(rule_id):
        raise LintError(f"invalid rule id: {rule_id!r}")
    if rule_id in _RESERVED_RULE_IDS:
        raise LintError(f"rule id {rule_id} is reserved for the framework")
    if rule_id in _REGISTRY or rule_id in _PROGRAM_REGISTRY:
        raise LintError(f"duplicate rule id: {rule_id}")


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a per-file rule to the global registry."""
    _check_rule_id(cls.rule_id)
    _REGISTRY[cls.rule_id] = cls
    return cls


def register_program(cls: Type[ProgramRule]) -> Type[ProgramRule]:
    """Class decorator adding a whole-program rule to the registry."""
    _check_rule_id(cls.rule_id)
    _PROGRAM_REGISTRY[cls.rule_id] = cls
    return cls


def registered_rule_ids() -> List[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


def registered_program_rule_ids() -> List[str]:
    _load_builtin_rules()
    return sorted(_PROGRAM_REGISTRY)


def rule_summaries() -> List[Tuple[str, str]]:
    """``(rule_id, summary)`` pairs for every registered rule, sorted."""
    _load_builtin_rules()
    return [(rule_id, _REGISTRY[rule_id].summary) for rule_id in sorted(_REGISTRY)]


def program_rule_summaries() -> List[Tuple[str, str]]:
    """``(rule_id, summary)`` pairs for every whole-program rule, sorted."""
    _load_builtin_rules()
    return [
        (rule_id, _PROGRAM_REGISTRY[rule_id].summary)
        for rule_id in sorted(_PROGRAM_REGISTRY)
    ]


def build_rules(
    select: Optional[Iterable[str]] = None, ignore: Iterable[str] = ()
) -> List[LintRule]:
    """Instantiate registered rules, filtered and in stable id order."""
    _load_builtin_rules()
    chosen = sorted(_REGISTRY)
    known = set(_REGISTRY) | set(_PROGRAM_REGISTRY)
    for requested in list(select or []) + list(ignore):
        if requested not in known:
            raise LintError(
                f"unknown rule id: {requested} (known: {', '.join(sorted(known))})"
            )
    if select is not None:
        wanted = set(select)
        chosen = [rule_id for rule_id in chosen if rule_id in wanted]
    dropped = set(ignore)
    return [_REGISTRY[rule_id]() for rule_id in chosen if rule_id not in dropped]


def build_program_rules(
    select: Optional[Iterable[str]] = None, ignore: Iterable[str] = ()
) -> List[ProgramRule]:
    """Instantiate whole-program rules, filtered and in stable id order.

    Unlike :func:`build_rules`, unknown ids in ``select``/``ignore`` are
    tolerated here — the caller typically passes one combined filter that
    also names per-file rules.
    """
    _load_builtin_rules()
    chosen = sorted(_PROGRAM_REGISTRY)
    if select is not None:
        wanted = set(select)
        chosen = [rule_id for rule_id in chosen if rule_id in wanted]
    dropped = set(ignore)
    return [
        _PROGRAM_REGISTRY[rule_id]() for rule_id in chosen if rule_id not in dropped
    ]


def _load_builtin_rules() -> None:
    """Import the rule pack so its ``@register`` decorators run."""
    from . import rules  # noqa: F401  (import for side effect)


def find_suppressions(source: str) -> Dict[int, Suppression]:
    """Map line number → suppression for every ``# repro: ok[...]`` comment.

    Tokenizes so that markers inside string literals do not count.  Falls
    back silently on tokenizer errors (the caller already parsed the file,
    so these are vanishingly rare).
    """
    suppressions: Dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [tok for tok in tokens if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError):
        return suppressions
    for tok in comments:
        match = _SUPPRESSION_RE.search(tok.string)
        if not match:
            continue
        rule_ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        suppressions[tok.start[0]] = Suppression(
            line=tok.start[0],
            col=tok.start[1],
            rule_ids=rule_ids,
            reason=match.group(2).strip(),
        )
    return suppressions


def apply_suppressions(
    violations: Iterable[Violation],
    suppressions: Dict[int, Suppression],
    path: str,
) -> List[Violation]:
    """Drop suppressed violations; report reason-less suppressions (SUP001)."""
    kept: List[Violation] = []
    for violation in violations:
        marker = suppressions.get(violation.line)
        if marker and violation.rule_id in marker.rule_ids and marker.reason:
            continue
        kept.append(violation)
    for line in sorted(suppressions):
        marker = suppressions[line]
        if not marker.reason:
            kept.append(
                Violation(
                    path=path,
                    line=line,
                    col=marker.col,
                    rule_id=SUPPRESSION_RULE_ID,
                    message=(
                        "suppression needs a reason: "
                        "`# repro: ok[RULE001] why this is safe`"
                    ),
                )
            )
    return sorted(kept, key=lambda violation: violation.sort_key)


def filter_suppressed(
    violations: Iterable[Violation],
    suppressions: Dict[int, Suppression],
) -> List[Violation]:
    """Drop suppressed violations without emitting SUP001 markers.

    The program pass uses this to honor suppressions whose SUP001
    bookkeeping the per-file pass already produced.
    """
    kept: List[Violation] = []
    for violation in violations:
        marker = suppressions.get(violation.line)
        if marker and violation.rule_id in marker.rule_ids and marker.reason:
            continue
        kept.append(violation)
    return kept


def stale_suppression_violations(
    suppressions: Dict[int, Suppression],
    fired_by_line: Dict[int, Set[str]],
    active_rule_ids: Set[str],
    path: str,
) -> List[Violation]:
    """SUP002 for every suppression whose rule no longer fires on its line.

    A suppressed id only counts as stale when that rule actually *ran*
    (``active_rule_ids``): ``--select DET001`` must not flag a DET002
    suppression as stale, and DET101-family markers are only audited when
    the program pass is enabled.
    """
    stale: List[Violation] = []
    for line in sorted(suppressions):
        marker = suppressions[line]
        if not marker.reason:
            continue  # reason-less markers are SUP001, handled elsewhere
        fired = fired_by_line.get(line, set())
        dead = [
            rule_id
            for rule_id in marker.rule_ids
            if rule_id in active_rule_ids and rule_id not in fired
        ]
        if dead:
            stale.append(
                Violation(
                    path=path,
                    line=line,
                    col=marker.col,
                    rule_id=STALE_SUPPRESSION_RULE_ID,
                    message=(
                        f"stale suppression: {', '.join(dead)} no longer "
                        "fire(s) on this line; drop the marker"
                    ),
                )
            )
    return stale


@dataclass
class FileCheck:
    """Raw per-file lint output, before suppression accounting.

    ``raw`` holds every violation the per-file rules produced (plus
    ``SYN001`` when the file does not parse); ``tree`` is the parsed AST
    (``None`` on syntax error) so callers can feed the same parse into
    the whole-program pass.
    """

    path: str
    raw: List[Violation]
    suppressions: Dict[int, Suppression]
    tree: Optional[ast.Module]


def check_source(
    source: str,
    path: str = "<memory>",
    rules: Optional[Sequence[LintRule]] = None,
) -> FileCheck:
    """Run per-file rules over one module, returning raw results."""
    if rules is None:
        rules = build_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return FileCheck(
            path=path,
            raw=[
                Violation(
                    path=path,
                    line=exc.lineno or 1,
                    col=max((exc.offset or 1) - 1, 0),
                    rule_id=SYNTAX_RULE_ID,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            suppressions=find_suppressions(source),
            tree=None,
        )
    module = ModuleContext(path=path, source=source, tree=tree)
    raw = [violation for rule in rules for violation in rule.check(module)]
    return FileCheck(
        path=path, raw=raw, suppressions=find_suppressions(source), tree=tree
    )


def lint_source(
    source: str,
    path: str = "<memory>",
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Violation]:
    """Lint one module's source text and return sorted violations."""
    checked = check_source(source, path=path, rules=rules)
    if checked.tree is None:
        return checked.raw
    return apply_suppressions(checked.raw, checked.suppressions, path)
