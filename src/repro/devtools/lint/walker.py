"""File collection and the (optionally parallel) lint driver.

Output is deterministic by construction: files are collected in sorted
order, every per-file result is independent, and the combined violation
list is re-sorted — so ``jobs=8`` and ``jobs=1`` produce byte-identical
reports (the same property the crawler itself guarantees).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ...errors import LintError
from .framework import IO_RULE_ID, LintRule, Violation, build_rules, lint_source


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories into a sorted, de-duplicated file list."""
    seen = set()
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {raw}")
        for candidate in candidates:
            key = str(candidate.resolve())
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def _lint_one(task: Tuple[str, Optional[Tuple[str, ...]]]) -> List[Violation]:
    """Lint a single file; module-level so worker processes can pickle it.

    A file that vanishes (or loses read permission) between discovery
    and parse is *reported* as ``IO001`` rather than aborting the run:
    races against concurrent editors must not cost the findings from
    every other file.  BOMs and ``# -*- coding: ... -*-`` declarations
    are honored via tokenize-style encoding detection.
    """
    from .program import decode_python_source  # deferred: avoids a cycle

    path, rule_ids = task
    rules = build_rules(select=rule_ids)
    try:
        source = decode_python_source(Path(path).read_bytes())
    except OSError as exc:
        return [
            Violation(
                path=path,
                line=1,
                col=0,
                rule_id=IO_RULE_ID,
                message=f"file vanished or unreadable: {exc}",
            )
        ]
    except (SyntaxError, UnicodeDecodeError, LookupError) as exc:
        return [
            Violation(
                path=path,
                line=1,
                col=0,
                rule_id="SYN001",
                message=f"file does not decode: {exc}",
            )
        ]
    return lint_source(source, path=path, rules=rules)


def lint_files(
    files: Sequence[Path],
    rules: Optional[Sequence[LintRule]] = None,
    jobs: int = 1,
) -> List[Violation]:
    """Lint ``files``, fanning out over ``jobs`` worker processes."""
    if jobs < 1:
        raise LintError(f"jobs must be >= 1, got {jobs}")
    rule_ids = tuple(rule.rule_id for rule in rules) if rules is not None else None
    tasks = [(str(path), rule_ids) for path in files]
    if jobs == 1 or len(tasks) < 2:
        results = [_lint_one(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_lint_one, tasks, chunksize=4))
    violations = [violation for per_file in results for violation in per_file]
    return sorted(violations, key=lambda violation: violation.sort_key)


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
    jobs: int = 1,
) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns ``(violations, files_checked)``."""
    files = collect_files(paths)
    return lint_files(files, rules=rules, jobs=jobs), len(files)
