"""Project symbol table and call graph over per-file summaries.

:class:`ProjectIndex` links the :class:`~.symbols.ModuleSummary` set into
one namespace: every function gets a fully-qualified key
(``repro.crawler.commander.Commander.run``), and call sites resolve
through import bindings, same-module lookup, ``self``-dispatch,
constructor-typed locals (``x = TreeBuilder(...)`` → ``x.build`` is
``TreeBuilder.build``), module-level singletons, and singleton-valued
parameter defaults — the "assigned-attribute heuristics".

The resolver is deliberately *unsound in the safe direction for each
rule*: a call it cannot resolve is treated as external (no edge), so
reachability and taint under-approximate rather than flood.  The known
false-negative classes are documented in DESIGN.md §"Whole-program
analysis contracts".
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .symbols import FunctionSummary, ModuleSummary


class ProjectIndex:
    """All module summaries, cross-linked and queryable."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        #: fq function name -> (owning module summary, function summary)
        self.functions: Dict[str, Tuple[ModuleSummary, FunctionSummary]] = {}
        #: fq class name -> module summary
        self.classes: Dict[str, ModuleSummary] = {}
        #: fq singleton name -> fq class name (or None if unresolved)
        self.singletons: Dict[str, Optional[str]] = {}
        for summary in self.modules.values():
            for qualname, function in summary.functions.items():
                self.functions[f"{summary.module}.{qualname}"] = (summary, function)
            for cls in summary.classes:
                self.classes[f"{summary.module}.{cls}"] = summary
        for summary in self.modules.values():
            for name, ctor in summary.singletons.items():
                self.singletons[f"{summary.module}.{name}"] = self._resolve_class(
                    summary, ctor
                )
        self._edges: Optional[Dict[str, List[Tuple[str, int, int]]]] = None

    # -- name resolution --------------------------------------------------

    def _resolve_class(self, module: ModuleSummary, written: str) -> Optional[str]:
        """Fully-qualified class for a name as written inside ``module``.

        Classmethod factories are unwrapped: ``ObsContext.disabled`` names
        the class ``ObsContext`` (trailing lowercase components are
        stripped until a known class is found).
        """
        candidates = [written]
        parts = written.split(".")
        while len(parts) > 1 and parts[-1][:1].islower():
            parts = parts[:-1]
            candidates.append(".".join(parts))
        for candidate in candidates:
            if candidate in module.classes:
                return f"{module.module}.{candidate}"
            head, _, rest = candidate.partition(".")
            target = module.imports.get(head)
            if target is None:
                continue
            qualified = f"{target}.{rest}" if rest else target
            if qualified in self.classes:
                return qualified
        return None

    def method(self, fq_class: Optional[str], name: str) -> Optional[str]:
        """``Class.meth`` fq function key, or ``None``."""
        if fq_class is None:
            return None
        candidate = f"{fq_class}.{name}"
        return candidate if candidate in self.functions else None

    def resolve_call(
        self,
        module: ModuleSummary,
        function: Optional[FunctionSummary],
        name: str,
    ) -> Optional[str]:
        """Resolve a call name to a project function, else ``None``."""
        resolved, _ = self.resolve_call_ex(module, function, name)
        return resolved

    def resolve_call_ex(
        self,
        module: ModuleSummary,
        function: Optional[FunctionSummary],
        name: str,
    ) -> Tuple[Optional[str], Optional[str]]:
        """Like :meth:`resolve_call`, also naming the singleton routed through.

        Returns ``(fq_function, fq_singleton)``; the second element is
        non-``None`` when the call dispatches off a module-level
        singleton instance (directly, via import, or via a parameter
        whose default is one).
        """
        parts = name.split(".")
        head, rest = parts[0], parts[1:]

        if function is not None:
            if head == "self" and function.cls and len(parts) == 2:
                return (
                    self.method(f"{module.module}.{function.cls}", parts[1]),
                    None,
                )
            if len(parts) == 2 and head in function.local_ctor_types:
                cls = self._resolve_class(module, function.local_ctor_types[head])
                return self.method(cls, parts[1]), None
            if len(parts) == 2 and head in function.param_defaults:
                fq_singleton = self._resolve_value_name(
                    module, function.param_defaults[head]
                )
                if fq_singleton in self.singletons:
                    cls = self.singletons[fq_singleton]
                    resolved = self.method(cls, parts[1])
                    if resolved is not None:
                        return resolved, fq_singleton

        if len(parts) == 2 and head in module.singletons:
            cls = self.singletons.get(f"{module.module}.{head}")
            resolved = self.method(cls, parts[1])
            if resolved is not None:
                return resolved, f"{module.module}.{head}"

        # Same-module function or Class.method written out.
        if name in module.functions:
            return f"{module.module}.{name}", None
        # Same-module constructor call → __init__ when defined.
        if name in module.classes:
            return self.method(f"{module.module}.{name}", "__init__"), None

        target = module.imports.get(head)
        if target is not None:
            qualified = ".".join([target] + rest) if rest else target
            if qualified in self.functions:
                return qualified, None
            if qualified in self.classes:
                return self.method(qualified, "__init__"), None
            # ``from mod import SINGLETON`` then ``SINGLETON.meth(...)``.
            if len(rest) == 1 and target in self.singletons:
                cls = self.singletons[target]
                resolved = self.method(cls, rest[0])
                if resolved is not None:
                    return resolved, target
        return None, None

    def _resolve_value_name(self, module: ModuleSummary, name: str) -> Optional[str]:
        """Fq name of a module-level value referenced as ``name``."""
        if name in module.singletons or name in module.module_mutables:
            return f"{module.module}.{name}"
        return module.imports.get(name)

    # -- graph queries ----------------------------------------------------

    @property
    def edges(self) -> Dict[str, List[Tuple[str, int, int]]]:
        """``caller fq -> [(callee fq, lineno, col), ...]`` (resolved only)."""
        if self._edges is None:
            edges: Dict[str, List[Tuple[str, int, int]]] = {}
            for fq in sorted(self.functions):
                module, function = self.functions[fq]
                out: List[Tuple[str, int, int]] = []
                for call in function.calls:
                    callee = self.resolve_call(module, function, call.name)
                    if callee is not None:
                        out.append((callee, call.lineno, call.col))
                edges[fq] = out
            self._edges = edges
        return self._edges

    def worker_entries(self) -> List[str]:
        """Functions handed to process/thread pools anywhere in the project."""
        entries: Set[str] = set()
        for fq in sorted(self.functions):
            module, function = self.functions[fq]
            for spawned in function.spawns:
                resolved = self.resolve_call(module, function, spawned)
                if resolved is not None:
                    entries.add(resolved)
        return sorted(entries)

    def reachable_from(self, entries: Iterable[str]) -> Set[str]:
        """Transitive closure over resolved call edges."""
        seen: Set[str] = set()
        queue = deque(entries)
        while queue:
            fq = queue.popleft()
            if fq in seen or fq not in self.functions:
                continue
            seen.add(fq)
            for callee, _, _ in self.edges.get(fq, ()):
                if callee not in seen:
                    queue.append(callee)
        return seen

    def returns_closure(self, direct: Dict[str, str]) -> Dict[str, str]:
        """Propagate a "returns X" fact through ``return f(...)`` chains.

        ``direct`` maps fq function → evidence string for functions with
        the fact locally; the result adds every function that returns the
        result of a call to a function already in the set, to fixpoint.
        """
        facts = dict(direct)
        changed = True
        while changed:
            changed = False
            for fq in sorted(self.functions):
                if fq in facts:
                    continue
                module, function = self.functions[fq]
                for call_name in function.return_calls:
                    callee = self.resolve_call(module, function, call_name)
                    if callee is not None and callee in facts:
                        facts[fq] = f"via {callee}: {facts[callee]}"
                        changed = True
                        break
        return facts

    def class_self_writes(self, fq_class: str) -> Dict[str, List[str]]:
        """Instance attributes written by each method of ``fq_class``.

        ``__init__`` is excluded: constructing the instance is how the
        singleton came to exist, not a worker-side mutation.
        """
        writes: Dict[str, List[str]] = {}
        prefix = f"{fq_class}."
        for fq in sorted(self.functions):
            if not fq.startswith(prefix) or fq.endswith(".__init__"):
                continue
            _, function = self.functions[fq]
            attrs = sorted({site.name for site in function.self_writes})
            if attrs:
                writes[fq] = attrs
        return writes

    def method_closure(self, fq_method: str) -> Set[str]:
        """``fq_method`` plus methods of the same class it calls via ``self``."""
        if fq_method not in self.functions:
            return set()
        fq_class = fq_method.rsplit(".", 1)[0]
        closure: Set[str] = set()
        queue = deque([fq_method])
        while queue:
            current = queue.popleft()
            if current in closure or current not in self.functions:
                continue
            closure.add(current)
            module, function = self.functions[current]
            for call in function.calls:
                if not call.name.startswith("self."):
                    continue
                resolved = self.resolve_call(module, function, call.name)
                if resolved is not None and resolved.startswith(f"{fq_class}."):
                    queue.append(resolved)
        return closure
