"""Per-file symbol summaries for the whole-program pass.

One AST walk per module distills everything the interprocedural rules
need into a JSON-serializable :class:`ModuleSummary`: module-qualified
function definitions, resolved import bindings, every call site, worker
spawn sites, RNG/entropy provenance facts, unordered-return facts,
ordered-sink feeds, and writes to module-level or instance state.

Summaries are deliberately *flat data* (dicts, lists, strings): they
pickle across the walker's worker processes and round-trip through the
on-disk cache (``cache``) unchanged, which is what makes warm runs skip
re-parsing entirely.  Everything that needs project-wide knowledge
(resolving a call to another module's function, reachability, fixpoints)
lives in ``callgraph`` instead — a summary never looks outside its own
file.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .framework import dotted_name

#: Bump when the summary shape changes; part of the cache key.
SUMMARY_VERSION = 1

#: Wall-clock reads (mirrors DET002's catalogue, fully qualified).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: OS-level entropy sources: values derived from these are never
#: reproducible across runs.
OS_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
    }
)

#: Sanctioned seed-derivation helpers (``repro.rng``).
_CLEAN_SEED_SUFFIXES = ("rng.derive_seed", "rng.child_rng")
_CLEAN_SEED_NAMES = frozenset({"derive_seed", "child_rng"})

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Constructors whose module-level result is a mutable container.
_MUTABLE_CTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
    }
)

#: Executor/process attributes whose function argument runs in a worker.
_SPAWN_ATTRS = frozenset({"map", "submit"})
_SPAWN_CTORS = frozenset({"Process", "Thread"})
_SPAWN_KEYWORDS = frozenset({"target", "initializer"})


@dataclass
class CallSite:
    """One call expression: the callee as written plus its location."""

    name: str
    lineno: int
    col: int


@dataclass
class WriteSite:
    """One write to shared state: a rebind or in-place mutation."""

    name: str
    lineno: int
    col: int
    action: str  # "rebind" | "mutate"


@dataclass
class SinkFeed:
    """A call result feeding an ordered sink (``list(f())`` etc.)."""

    callee: str
    sink: str
    lineno: int
    col: int


@dataclass
class RngBirth:
    """An RNG constructed here, with the provenance of its seed.

    ``kind`` is ``"unseeded"`` (no argument: CPython seeds from OS
    entropy), ``"constant"``, ``"wall-clock"``, ``"os-entropy"``,
    ``"clean"`` (derived via ``repro.rng``), or ``"call"`` — seeded from
    another function's return value, resolved later against the call
    graph (``seed_call`` names it).
    """

    kind: str
    lineno: int
    col: int
    seed_call: Optional[str] = None


@dataclass
class FunctionSummary:
    """Everything the program rules know about one function."""

    qualname: str
    lineno: int
    col: int
    cls: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    spawns: List[str] = field(default_factory=list)
    returns_rng: Optional[RngBirth] = None
    returns_entropy: bool = False
    returns_unordered: bool = False
    return_calls: List[str] = field(default_factory=list)
    global_writes: List[WriteSite] = field(default_factory=list)
    attr_writes: List[WriteSite] = field(default_factory=list)
    self_writes: List[WriteSite] = field(default_factory=list)
    sink_feeds: List[SinkFeed] = field(default_factory=list)
    local_ctor_types: Dict[str, str] = field(default_factory=dict)
    param_defaults: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """The per-file slice of the project symbol table."""

    module: str
    path: str
    is_package: bool = False
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: List[str] = field(default_factory=list)
    module_mutables: Dict[str, List[int]] = field(default_factory=dict)
    singletons: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        functions = {}
        for qualname, raw in data.get("functions", {}).items():
            raw = dict(raw)
            raw["calls"] = [CallSite(**c) for c in raw.get("calls", [])]
            raw["global_writes"] = [WriteSite(**w) for w in raw.get("global_writes", [])]
            raw["attr_writes"] = [WriteSite(**w) for w in raw.get("attr_writes", [])]
            raw["self_writes"] = [WriteSite(**w) for w in raw.get("self_writes", [])]
            raw["sink_feeds"] = [SinkFeed(**s) for s in raw.get("sink_feeds", [])]
            birth = raw.get("returns_rng")
            raw["returns_rng"] = RngBirth(**birth) if birth else None
            functions[qualname] = FunctionSummary(**raw)
        return cls(
            module=data["module"],
            path=data["path"],
            is_package=data.get("is_package", False),
            imports=dict(data.get("imports", {})),
            functions=functions,
            classes=list(data.get("classes", [])),
            module_mutables={
                name: list(site) for name, site in data.get("module_mutables", {}).items()
            },
            singletons=dict(data.get("singletons", {})),
        )


def module_name_for(path: Path) -> Tuple[str, bool]:
    """Dotted module name for ``path`` by walking the ``__init__.py`` chain.

    ``src/repro/crawler/commander.py`` → ``("repro.crawler.commander",
    False)``; a file outside any package is just its stem.
    """
    resolved = Path(path).resolve()
    is_package = resolved.name == "__init__.py"
    components: List[str] = [] if is_package else [resolved.stem]
    directory = resolved.parent
    while (directory / "__init__.py").is_file():
        components.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(components) or resolved.stem, is_package


def _resolve_relative(module: str, is_package: bool, level: int, target: str) -> str:
    """Absolute module path for a ``from ..x import y`` statement."""
    parts = module.split(".") if module else []
    package = parts if is_package else parts[:-1]
    base = package[: len(package) - (level - 1)] if level > 1 else package
    suffix = target.split(".") if target else []
    return ".".join(base + suffix)


class _ImportTable:
    """Local-name → fully-qualified-target map for one module."""

    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.bindings: Dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.bindings[alias.asname] = alias.name
            else:
                head = alias.name.split(".", 1)[0]
                self.bindings[head] = head

    def add_import_from(self, node: ast.ImportFrom) -> None:
        target = node.module or ""
        if node.level:
            target = _resolve_relative(
                self.module, self.is_package, node.level, target
            )
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            qualified = f"{target}.{alias.name}" if target else alias.name
            self.bindings[local] = qualified

    def expand(self, name: str) -> str:
        """Rewrite the head of ``name`` through the import bindings."""
        head, _, rest = name.partition(".")
        target = self.bindings.get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target


def _is_clean_seed_call(expanded: str) -> bool:
    return expanded in _CLEAN_SEED_NAMES or any(
        expanded.endswith(suffix) for suffix in _CLEAN_SEED_SUFFIXES
    )


def _is_unordered_expr(node: ast.AST, imports: _ImportTable) -> bool:
    """Set/``dict.keys()`` values — iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
    return False


class _FunctionVisitor:
    """Single walk over one function body, nested defs included.

    Nested functions and lambdas are folded into the enclosing summary:
    for reachability purposes a closure the function defines is work the
    function can perform (the Commander's ``observe`` hook is the
    motivating case).
    """

    def __init__(
        self,
        node: ast.AST,
        qualname: str,
        cls: Optional[str],
        imports: _ImportTable,
    ) -> None:
        self.imports = imports
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        self.summary = FunctionSummary(
            qualname=qualname,
            lineno=node.lineno,
            col=node.col_offset,
            cls=cls,
        )
        positional = args.posonlyargs + args.args
        for arg, default in zip(reversed(positional), reversed(args.defaults)):
            if isinstance(default, ast.Name):
                self.summary.param_defaults[arg.arg] = default.id
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if isinstance(default, ast.Name):
                self.summary.param_defaults[arg.arg] = default.id
        self._globals: Set[str] = set()
        self._locals: Set[str] = set(params)
        self._assigned_call: Dict[str, str] = {}
        self._assigned_unordered: Set[str] = set()
        self._assigned_rng: Dict[str, RngBirth] = {}
        self._assigned_entropy: Set[str] = set()
        self._body = list(ast.iter_child_nodes(node))
        self._collect_scope(node)
        self._walk(node)

    # -- scope pre-pass ---------------------------------------------------

    def _collect_scope(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                self._globals.update(child.names)
            elif isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                self._locals.add(child.id)
        self._locals -= self._globals

    # -- classification helpers ------------------------------------------

    def _expanded(self, node: ast.AST) -> Optional[str]:
        name = dotted_name(node)
        if name is None:
            return None
        return self.imports.expand(name)

    def _classify_rng(self, node: ast.Call) -> Optional[RngBirth]:
        """An ``random.Random``/``SystemRandom`` birth, or ``None``."""
        expanded = self._expanded(node.func)
        if expanded == "random.SystemRandom":
            return RngBirth("os-entropy", node.lineno, node.col_offset)
        if expanded != "random.Random":
            return None
        if not node.args:
            return RngBirth("unseeded", node.lineno, node.col_offset)
        seed = node.args[0]
        if isinstance(seed, ast.Constant):
            return RngBirth("constant", node.lineno, node.col_offset)
        if isinstance(seed, ast.Call):
            seed_name = self._expanded(seed.func)
            if seed_name is None:
                return RngBirth("call", node.lineno, node.col_offset)
            if _is_clean_seed_call(seed_name):
                return RngBirth("clean", node.lineno, node.col_offset)
            if seed_name in WALL_CLOCK_CALLS:
                return RngBirth("wall-clock", node.lineno, node.col_offset)
            if seed_name in OS_ENTROPY_CALLS:
                return RngBirth("os-entropy", node.lineno, node.col_offset)
            return RngBirth(
                "call", node.lineno, node.col_offset, seed_call=dotted_name(seed.func)
            )
        if isinstance(seed, ast.Name):
            birth = self._assigned_rng.get(seed.id)
            if seed.id in self._assigned_entropy:
                return RngBirth("os-entropy", node.lineno, node.col_offset)
            if birth is not None:
                return RngBirth(birth.kind, node.lineno, node.col_offset, birth.seed_call)
        return RngBirth("clean", node.lineno, node.col_offset)

    def _is_entropy_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        expanded = self._expanded(node.func)
        return expanded in WALL_CLOCK_CALLS or expanded in OS_ENTROPY_CALLS

    def _value_facts(self, value: ast.AST) -> Tuple[Optional[RngBirth], bool, bool, Optional[str]]:
        """(rng birth, is-entropy, is-unordered, producing call) of an expr."""
        birth: Optional[RngBirth] = None
        entropy = False
        unordered = _is_unordered_expr(value, self.imports)
        call_name: Optional[str] = None
        if isinstance(value, ast.Call):
            birth = self._classify_rng(value)
            entropy = self._is_entropy_call(value)
            name = dotted_name(value.func)
            if name is not None and birth is None and not entropy:
                call_name = name
        elif isinstance(value, ast.Name):
            birth = self._assigned_rng.get(value.id)
            entropy = value.id in self._assigned_entropy
            unordered = unordered or value.id in self._assigned_unordered
            call_name = self._assigned_call.get(value.id)
        return birth, entropy, unordered, call_name

    # -- the walk ---------------------------------------------------------

    def _walk(self, root: ast.AST) -> None:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                self._visit_call(node)
            elif isinstance(node, ast.Assign):
                self._visit_assign(node)
            elif isinstance(node, ast.AugAssign):
                self._visit_target_write(node.target, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._visit_target_write(node.target, node)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._visit_return(node.value)
            elif isinstance(node, ast.ListComp) and node.generators:
                self._visit_listcomp(node)

    def _visit_call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            self.summary.calls.append(
                CallSite(name=name, lineno=node.lineno, col=node.col_offset)
            )
        self._visit_spawns(node, name)
        self._visit_mutating_method(node)
        self._visit_sink(node, name)

    def _visit_spawns(self, node: ast.Call, name: Optional[str]) -> None:
        is_pool_dispatch = (
            isinstance(node.func, ast.Attribute) and node.func.attr in _SPAWN_ATTRS
        )
        if is_pool_dispatch and node.args:
            spawned = dotted_name(node.args[0])
            if spawned is not None:
                self.summary.spawns.append(spawned)
        ctor = name.rsplit(".", 1)[-1] if name else None
        for keyword in node.keywords:
            if keyword.arg in _SPAWN_KEYWORDS and (
                is_pool_dispatch or ctor in _SPAWN_CTORS
            ):
                spawned = dotted_name(keyword.value)
                if spawned is not None:
                    self.summary.spawns.append(spawned)

    def _visit_mutating_method(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATING_METHODS:
            return
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self":
                return
            if receiver.id not in self._locals:
                self.summary.global_writes.append(
                    WriteSite(receiver.id, node.lineno, node.col_offset, "mutate")
                )
        elif isinstance(receiver, ast.Attribute):
            base = receiver.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    self.summary.self_writes.append(
                        WriteSite(receiver.attr, node.lineno, node.col_offset, "mutate")
                    )
                elif base.id not in self._locals:
                    self.summary.attr_writes.append(
                        WriteSite(
                            f"{base.id}.{receiver.attr}",
                            node.lineno,
                            node.col_offset,
                            "mutate",
                        )
                    )

    def _visit_sink(self, node: ast.Call, name: Optional[str]) -> None:
        is_join = isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        if name not in ("list", "tuple", "enumerate") and not is_join:
            return
        if not node.args:
            return
        sink = "str.join" if is_join else str(name)
        candidate = node.args[0]
        if isinstance(candidate, ast.GeneratorExp) and candidate.generators:
            candidate = candidate.generators[0].iter
        self._record_sink_feed(candidate, sink)

    def _record_sink_feed(self, candidate: ast.AST, sink: str) -> None:
        if isinstance(candidate, ast.Call):
            callee = dotted_name(candidate.func)
            if callee is not None and callee != "sorted":
                self.summary.sink_feeds.append(
                    SinkFeed(callee, sink, candidate.lineno, candidate.col_offset)
                )
        elif isinstance(candidate, ast.Name):
            callee = self._assigned_call.get(candidate.id)
            if candidate.id in self._assigned_unordered:
                return  # per-file DET003 territory once it is a known set
            if callee is not None:
                self.summary.sink_feeds.append(
                    SinkFeed(callee, sink, candidate.lineno, candidate.col_offset)
                )

    def _visit_listcomp(self, node: ast.ListComp) -> None:
        self._record_sink_feed(node.generators[0].iter, "list-comprehension")

    def _visit_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._visit_target_write(target, node)
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        birth, entropy, unordered, call_name = self._value_facts(node.value)
        if birth is not None:
            self._assigned_rng[name] = birth
        if entropy:
            self._assigned_entropy.add(name)
        if unordered:
            self._assigned_unordered.add(name)
        if call_name is not None:
            self._assigned_call[name] = call_name
        if isinstance(node.value, ast.Call):
            ctor = dotted_name(node.value.func)
            if ctor and ctor.rsplit(".", 1)[-1][:1].isupper():
                self.summary.local_ctor_types[name] = ctor

    def _visit_target_write(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._globals:
                self.summary.global_writes.append(
                    WriteSite(target.id, node.lineno, node.col_offset, "rebind")
                )
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and base.id not in self._locals:
                if base.id != "self":
                    self.summary.global_writes.append(
                        WriteSite(base.id, node.lineno, node.col_offset, "mutate")
                    )
            elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                if base.value.id == "self":
                    self.summary.self_writes.append(
                        WriteSite(base.attr, node.lineno, node.col_offset, "mutate")
                    )
                elif base.value.id not in self._locals:
                    self.summary.attr_writes.append(
                        WriteSite(
                            f"{base.value.id}.{base.attr}",
                            node.lineno,
                            node.col_offset,
                            "mutate",
                        )
                    )
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    self.summary.self_writes.append(
                        WriteSite(target.attr, node.lineno, node.col_offset, "rebind")
                    )
                elif base.id not in self._locals:
                    self.summary.attr_writes.append(
                        WriteSite(
                            f"{base.id}.{target.attr}",
                            node.lineno,
                            node.col_offset,
                            "rebind",
                        )
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_target_write(element, node)

    def _visit_return(self, value: ast.AST) -> None:
        if isinstance(value, ast.Call) and dotted_name(value.func) == "sorted":
            return
        birth, entropy, unordered, call_name = self._value_facts(value)
        if birth is not None and birth.kind != "clean":
            self.summary.returns_rng = birth
        if entropy:
            self.summary.returns_entropy = True
        if unordered:
            self.summary.returns_unordered = True
        if call_name is not None:
            self.summary.return_calls.append(call_name)


def summarize_module(
    path: str, tree: ast.Module, module: Optional[str] = None
) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed file."""
    if module is None:
        name, is_package = module_name_for(Path(path))
    else:
        name, is_package = module, Path(path).name == "__init__.py"
    imports = _ImportTable(name, is_package)
    summary = ModuleSummary(module=name, path=path, is_package=is_package)

    # Imports anywhere in the file (function-local imports included) feed
    # name resolution; bindings are last-writer-wins in walk order.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imports.add_import(node)
        elif isinstance(node, ast.ImportFrom):
            imports.add_import_from(node)
    summary.imports = dict(imports.bindings)

    def add_function(node: ast.AST, qualname: str, cls: Optional[str]) -> None:
        visitor = _FunctionVisitor(node, qualname, cls, imports)
        summary.functions[qualname] = visitor.summary

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, node.name, None)
        elif isinstance(node, ast.ClassDef):
            summary.classes.append(node.name)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(item, f"{node.name}.{item.name}", node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            if isinstance(node, ast.Assign):
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
            else:
                target = node.target
            if not isinstance(target, ast.Name) or node.value is None:
                continue
            value = node.value
            if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.DictComp, ast.SetComp, ast.ListComp)):
                summary.module_mutables[target.id] = [value.lineno, value.col_offset]
            elif isinstance(value, ast.Call):
                ctor = dotted_name(value.func)
                if ctor is None:
                    continue
                expanded = imports.expand(ctor)
                if ctor in _MUTABLE_CTORS or expanded in _MUTABLE_CTORS:
                    summary.module_mutables[target.id] = [
                        value.lineno,
                        value.col_offset,
                    ]
                elif any(part[:1].isupper() for part in ctor.split(".")):
                    # ``X = Cls(...)`` and classmethod factories like
                    # ``X = Cls.disabled()`` both make X a module-level
                    # instance; the call graph strips trailing method
                    # components when resolving the class.
                    summary.singletons[target.id] = ctor
    return summary
