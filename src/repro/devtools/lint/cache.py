"""Content-addressed cache of per-file lint products.

Warm ``repro-lint`` runs should re-analyze only files whose bytes
changed.  Each analyzed file stores one JSON document under
``.repro-lint-cache/`` keyed by a BLAKE2b digest of its *content* plus
everything else that could change the answer:

- ``CACHE_FORMAT_VERSION`` (bump on any payload-shape change),
- ``SUMMARY_VERSION`` from :mod:`.symbols` (summary-shape changes),
- the Python ``major.minor`` (the AST grammar differs across versions),
- the sorted per-file rule-id list (a different ``--select`` is a
  different answer).

Rule *logic* changes are covered by bumping :data:`CACHE_FORMAT_VERSION`
in the same commit — the cache-invalidation rule documented in
DESIGN.md.  Entries are written atomically (temp file + ``os.replace``)
so concurrent walker workers never observe a torn entry; a corrupt or
unreadable entry is treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Iterable, Optional

from .symbols import SUMMARY_VERSION

#: Bump whenever the cached payload shape OR any rule's logic changes.
CACHE_FORMAT_VERSION = 1

#: Default cache directory name, created under the working directory.
CACHE_DIR_NAME = ".repro-lint-cache"


def cache_key(content: bytes, rule_ids: Iterable[str]) -> str:
    """Stable cache key for one file's analysis products."""
    hasher = hashlib.blake2b(digest_size=16)
    preamble = "|".join(
        [
            f"fmt{CACHE_FORMAT_VERSION}",
            f"sum{SUMMARY_VERSION}",
            f"py{sys.version_info.major}.{sys.version_info.minor}",
            ",".join(sorted(rule_ids)),
        ]
    )
    hasher.update(preamble.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(content)
    return hasher.hexdigest()


class SummaryCache:
    """Directory-backed JSON store; ``None`` directory disables it."""

    def __init__(self, directory: Optional[str]) -> None:
        self.directory = Path(directory) if directory else None
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def _entry_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        """The cached payload for ``key``, or ``None`` on any miss."""
        if self.directory is None:
            return None
        try:
            with open(self._entry_path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key`` (best effort)."""
        if self.directory is None:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream, sort_keys=True)
                os.replace(temp_name, self._entry_path(key))
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full disk never fails the lint run; the
            # cache is an accelerator, not a correctness dependency.
            pass
