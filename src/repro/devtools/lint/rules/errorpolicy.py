"""Error-policy rules: ERR001 (ReproError discipline), ERR002 (retryability).

ERR001 — ``repro.errors`` promises that callers can catch all package
failures with one ``except ReproError`` clause.  This rule keeps the
promise honest: ``raise`` statements may not throw builtin exceptions
(argument validation via ``ValueError``/``TypeError`` *with a message*
excepted), and locally defined exception classes must reach a
``repro.errors`` base.

ERR002 — retryable exceptions must carry a ``failure_reason``.  The
retry layer (:mod:`repro.crawler.retry`) dispatches on the reason of
every :class:`~repro.errors.TransientCrawlError`; a transient error
without one would be classified "unknown" and silently never retried.

Resolution is intentionally module-local: a name imported from any module
whose last path component is ``errors`` is trusted to be a ReproError
subclass, locally defined classes are resolved through their base-class
chain within the same file, and anything the rule cannot resolve gets the
benefit of the doubt.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, Optional, Set

from ..framework import LintRule, ModuleContext, Violation, dotted_name, register

_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)

#: Builtins acceptable for argument validation when given a message.
_VALIDATION_BUILTINS = frozenset({"ValueError", "TypeError"})

#: Builtins with conventional meanings a ReproError must not shadow.
_ALWAYS_ALLOWED = frozenset(
    {
        "NotImplementedError",
        "StopIteration",
        "StopAsyncIteration",
        "KeyboardInterrupt",
        "SystemExit",
        "GeneratorExit",
    }
)


@register
class ReproErrorDiscipline(LintRule):
    rule_id = "ERR001"
    summary = "raised exception does not derive from repro.errors.ReproError"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        local_classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        trusted = set(module.imported_from_suffix("errors"))
        trusted.add("ReproError")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            if isinstance(node.exc, ast.Call):
                name = dotted_name(node.exc.func)
                argc = len(node.exc.args) + len(node.exc.keywords)
            elif isinstance(node.exc, ast.Name):
                name, argc = node.exc.id, 0
            else:
                continue
            if name is None:
                continue
            simple = name.rsplit(".", 1)[-1]
            if simple in _ALWAYS_ALLOWED or simple in trusted:
                continue
            if simple in _VALIDATION_BUILTINS:
                if argc == 0:
                    yield self.flag(
                        module,
                        node,
                        f"{simple} raised without a message; argument-validation "
                        "errors must say what was wrong",
                    )
                continue
            if simple in _BUILTIN_EXCEPTIONS:
                yield self.flag(
                    module,
                    node,
                    f"raise of builtin {simple}; package errors must derive from "
                    "ReproError (see repro.errors)",
                )
                continue
            if self._derives_from_repro(simple, local_classes, trusted) is False:
                yield self.flag(
                    module,
                    node,
                    f"{simple} does not derive from ReproError; base it on a "
                    "repro.errors class",
                )

    def _derives_from_repro(
        self,
        name: str,
        local_classes: Dict[str, ast.ClassDef],
        trusted: Set[str],
        _seen: Optional[Set[str]] = None,
    ) -> Optional[bool]:
        """True/False when resolvable from this module alone, else None.

        ``None`` (unknown origin — e.g. imported from a sibling module)
        gets the benefit of the doubt at the call site.
        """
        seen = _seen if _seen is not None else set()
        if name in seen:
            return False
        seen.add(name)
        definition = local_classes.get(name)
        if definition is None:
            return None
        verdicts = []
        for base in definition.bases:
            base_name = dotted_name(base)
            if base_name is None:
                verdicts.append(None)
                continue
            simple = base_name.rsplit(".", 1)[-1]
            if simple in trusted:
                return True
            if simple in _BUILTIN_EXCEPTIONS:
                verdicts.append(False)
                continue
            verdicts.append(
                self._derives_from_repro(simple, local_classes, trusted, seen)
            )
        if True in verdicts:
            return True
        if None in verdicts or not verdicts:
            return None
        return False


@register
class RetryableReasonDiscipline(LintRule):
    rule_id = "ERR002"
    summary = "retryable exception must carry a failure_reason"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        local_classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                if self._derives_from_transient(
                    node.name, local_classes
                ) and not self._reason_in_chain(node.name, local_classes):
                    yield self.flag(
                        module,
                        node,
                        f"{node.name} derives from TransientCrawlError but never "
                        "sets failure_reason; the retry layer dispatches on it",
                    )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                if isinstance(node.exc, ast.Call):
                    name = dotted_name(node.exc.func)
                elif isinstance(node.exc, ast.Name):
                    name = node.exc.id
                else:
                    continue
                if name and name.rsplit(".", 1)[-1] == "TransientCrawlError":
                    yield self.flag(
                        module,
                        node,
                        "raise of bare TransientCrawlError; raise a subclass "
                        "that names its failure_reason",
                    )

    def _derives_from_transient(
        self,
        name: str,
        local_classes: Dict[str, ast.ClassDef],
        _seen: Optional[Set[str]] = None,
    ) -> bool:
        """Whether ``name`` reaches ``TransientCrawlError`` via local bases."""
        seen = _seen if _seen is not None else set()
        if name in seen:
            return False
        seen.add(name)
        definition = local_classes.get(name)
        if definition is None:
            return False
        for base in definition.bases:
            base_name = dotted_name(base)
            if base_name is None:
                continue
            simple = base_name.rsplit(".", 1)[-1]
            if simple == "TransientCrawlError":
                return True
            if self._derives_from_transient(simple, local_classes, seen):
                return True
        return False

    def _reason_in_chain(
        self,
        name: str,
        local_classes: Dict[str, ast.ClassDef],
        _seen: Optional[Set[str]] = None,
    ) -> bool:
        """Whether the class (or a local ancestor) sets a ``failure_reason``.

        The chain stops at ``TransientCrawlError`` itself — its empty
        default is exactly what subclasses must override.
        """
        seen = _seen if _seen is not None else set()
        if name in seen or name == "TransientCrawlError":
            return False
        seen.add(name)
        definition = local_classes.get(name)
        if definition is None:
            return False
        if self._sets_failure_reason(definition):
            return True
        for base in definition.bases:
            base_name = dotted_name(base)
            if base_name is None:
                continue
            simple = base_name.rsplit(".", 1)[-1]
            if self._reason_in_chain(simple, local_classes, seen):
                return True
        return False

    def _sets_failure_reason(self, definition: ast.ClassDef) -> bool:
        """A non-empty class attribute, or an assignment in ``__init__``."""
        for statement in definition.body:
            value = None
            if isinstance(statement, ast.Assign):
                if any(
                    isinstance(target, ast.Name) and target.id == "failure_reason"
                    for target in statement.targets
                ):
                    value = statement.value
            elif isinstance(statement, ast.AnnAssign):
                target = statement.target
                if (
                    isinstance(target, ast.Name)
                    and target.id == "failure_reason"
                    and statement.value is not None
                ):
                    value = statement.value
            if value is not None:
                # A literal must be a non-empty string; a name/attribute
                # (a faults-module constant) gets the benefit of the doubt.
                if isinstance(value, ast.Constant):
                    if isinstance(value.value, str) and value.value:
                        return True
                else:
                    return True
        init = next(
            (
                statement
                for statement in definition.body
                if isinstance(statement, ast.FunctionDef)
                and statement.name == "__init__"
            ),
            None,
        )
        if init is None:
            return False
        for node in ast.walk(init):
            if (
                isinstance(node, (ast.Assign, ast.AnnAssign))
                and self._assigns_self_failure_reason(node)
            ):
                return True
        return False

    @staticmethod
    def _assigns_self_failure_reason(node) -> bool:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        return any(
            isinstance(target, ast.Attribute)
            and target.attr == "failure_reason"
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            for target in targets
        )
