"""SQL001: SQL strings must agree with the module's schema constant.

The measurement store (``repro/crawler/storage.py``) keeps its schema in
a module-level ``_SCHEMA`` string and writes with positional ``INSERT
INTO t VALUES (?, ...)`` statements — a shape where adding a column to
the schema but not to an insert fails only at runtime, possibly deep into
a long crawl.  This rule cross-checks, per module:

* every table named in ``FROM``/``INTO``/``UPDATE``/``JOIN`` exists in
  the schema;
* positional inserts carry exactly one ``?`` per schema column (explicit
  column lists are checked by name and count);
* identifiers in constant queries resolve to columns of the referenced
  tables;
* ``CREATE INDEX`` statements inside the schema reference real tables
  and columns.

Modules without a ``_SCHEMA``/``SCHEMA`` string constant are skipped, and
only plain string constants are analysed — f-strings that splice table
names or placeholder lists are outside static reach.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from ..framework import LintRule, ModuleContext, Violation, register

_SCHEMA_NAMES = ("_SCHEMA", "SCHEMA")

_CREATE_TABLE_RE = re.compile(
    r"CREATE\s+TABLE(?:\s+IF\s+NOT\s+EXISTS)?\s+(\w+)\s*\((.*?)\)\s*;",
    re.IGNORECASE | re.DOTALL,
)
_CREATE_INDEX_RE = re.compile(
    r"CREATE\s+INDEX(?:\s+IF\s+NOT\s+EXISTS)?\s+\w+\s+ON\s+(\w+)\s*\(([^)]*)\)",
    re.IGNORECASE,
)
# Deliberately case-sensitive: prose like "Insert one visit's rows" must
# not be mistaken for SQL, and this codebase writes SQL keywords upper-case.
_SQL_HEAD_RE = re.compile(r"\s*(SELECT|INSERT|UPDATE|DELETE)\b")
_TABLE_REF_RE = re.compile(r"\b(?:FROM|INTO|UPDATE|JOIN)\s+(\w+)", re.IGNORECASE)
_INSERT_RE = re.compile(
    r"\s*INSERT\s+INTO\s+(\w+)\s*(?:\(([^)]*)\))?\s*VALUES\s*\((.*)\)",
    re.IGNORECASE | re.DOTALL,
)
_IDENTIFIER_RE = re.compile(r"[A-Za-z_]\w*")
_STRING_LITERAL_RE = re.compile(r"'[^']*'")

#: SQL keywords, functions and type names that are not column references.
_SQL_WORDS = frozenset(
    """
    abs and as asc avg between by case cast coalesce count delete desc
    distinct else end exists from full group having if ifnull in inner
    insert instr into is join key left length like limit lower ltrim max
    min not notnull null offset on or order outer primary replace right
    rowid rtrim select set substr sum then trim union update upper using
    values when where
    """.split()
)


def _split_columns(body: str) -> List[str]:
    """Split a CREATE TABLE body on top-level commas only."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


_TABLE_CONSTRAINTS = frozenset({"primary", "foreign", "unique", "check", "constraint"})


def _parse_schema(schema_sql: str) -> Dict[str, List[str]]:
    """Table name → ordered column names, from CREATE TABLE statements."""
    tables: Dict[str, List[str]] = {}
    for match in _CREATE_TABLE_RE.finditer(schema_sql):
        table, body = match.group(1), match.group(2)
        columns: List[str] = []
        for item in _split_columns(body):
            words = item.split()
            if not words or words[0].lower() in _TABLE_CONSTRAINTS:
                continue
            columns.append(words[0])
        tables[table] = columns
    return tables


def _schema_constant(module: ModuleContext) -> Optional[Tuple[ast.AST, str]]:
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in _SCHEMA_NAMES
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                return node, value.value
    return None


@register
class SchemaConsistency(LintRule):
    rule_id = "SQL001"
    summary = "SQL string disagrees with the module's _SCHEMA constant"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        found = _schema_constant(module)
        if found is None:
            return
        schema_node, schema_sql = found
        tables = _parse_schema(schema_sql)
        yield from self._check_indexes(module, schema_node, schema_sql, tables)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _SQL_HEAD_RE.match(node.value)
            ):
                continue
            if node.value == schema_sql:
                continue
            yield from self._check_query(module, node, node.value, tables)

    def _check_indexes(
        self,
        module: ModuleContext,
        schema_node: ast.AST,
        schema_sql: str,
        tables: Dict[str, List[str]],
    ) -> Iterator[Violation]:
        for match in _CREATE_INDEX_RE.finditer(schema_sql):
            table = match.group(1)
            if table not in tables:
                yield self.flag(
                    module,
                    schema_node,
                    f"CREATE INDEX references unknown table {table}",
                )
                continue
            for column in _IDENTIFIER_RE.findall(match.group(2)):
                if column not in tables[table]:
                    yield self.flag(
                        module,
                        schema_node,
                        f"CREATE INDEX references unknown column "
                        f"{table}.{column}",
                    )

    def _check_query(
        self,
        module: ModuleContext,
        node: ast.AST,
        sql: str,
        tables: Dict[str, List[str]],
    ) -> Iterator[Violation]:
        referenced = _TABLE_REF_RE.findall(sql)
        if not referenced:
            # No FROM/INTO/UPDATE/JOIN clause — nothing to cross-check.
            return
        unknown_tables = [table for table in referenced if table not in tables]
        for table in unknown_tables:
            yield self.flag(
                module,
                node,
                f"query references unknown table {table} "
                f"(schema defines: {', '.join(sorted(tables))})",
            )
        if unknown_tables:
            return
        insert = _INSERT_RE.match(sql)
        if insert is not None:
            yield from self._check_insert(module, node, insert, tables)
            return
        known_columns = {
            column for table in referenced for column in tables[table]
        }
        cleaned = _STRING_LITERAL_RE.sub("", sql)
        flagged = set()
        for word in _IDENTIFIER_RE.findall(cleaned):
            if word.lower() in _SQL_WORDS or word in tables or word in known_columns:
                continue
            if word in flagged:
                continue
            flagged.add(word)
            yield self.flag(
                module,
                node,
                f"identifier {word} is not a column of "
                f"{', '.join(sorted(set(referenced)))}",
            )

    def _check_insert(
        self,
        module: ModuleContext,
        node: ast.AST,
        insert: "re.Match[str]",
        tables: Dict[str, List[str]],
    ) -> Iterator[Violation]:
        table, column_list, values = insert.group(1), insert.group(2), insert.group(3)
        columns = tables[table]
        expected = len(columns)
        if column_list is not None:
            listed = _IDENTIFIER_RE.findall(column_list)
            for column in listed:
                if column not in columns:
                    yield self.flag(
                        module,
                        node,
                        f"INSERT lists unknown column {table}.{column}",
                    )
            expected = len(listed)
        if re.fullmatch(r"[\s?,]*", values):
            placeholders = values.count("?")
            if placeholders != expected:
                yield self.flag(
                    module,
                    node,
                    f"INSERT INTO {table} has {placeholders} placeholders for "
                    f"{expected} columns",
                )
