"""SQL001/SQL002: SQL strings must agree with the module's schema constant.

The measurement store (``repro/crawler/storage.py``) keeps its schema in
a module-level ``_SCHEMA`` string and writes with positional ``INSERT
INTO t VALUES (?, ...)`` statements — a shape where adding a column to
the schema but not to an insert fails only at runtime, possibly deep into
a long crawl.  This rule cross-checks, per module:

* every table named in ``FROM``/``INTO``/``UPDATE``/``JOIN`` exists in
  the schema;
* positional inserts carry exactly one ``?`` per schema column (explicit
  column lists are checked by name and count);
* identifiers in constant queries resolve to columns of the referenced
  tables;
* ``CREATE INDEX`` statements inside the schema reference real tables
  and columns.

SQL002 guards ordering totality: a query whose results feed deterministic
serialization (exports, digests, bundles) must sort by a *total* order, or
rows that tie on the sort key come back in an SQLite-internal order that
is stable per file but not per history of inserts/vacuums.  The rule
checks every constant single-table ``SELECT ... ORDER BY``: the bare
columns of the ``ORDER BY`` clause, together with columns pinned by
``col = ?`` / ``col = literal`` equality in ``WHERE``, must cover a
unique key of the table — its ``PRIMARY KEY``, the ``GROUP BY`` columns,
the ``SELECT DISTINCT`` columns, or (for PK-less log tables) a logical
key registered in :data:`UniqueOrdering.logical_keys`.  Clauses with any
non-bare-column term (``ORDER BY MIN(x)``) are skipped — expressions are
outside static reach, like f-string SQL.

Modules without a ``_SCHEMA``/``SCHEMA`` string constant are skipped, and
only plain string constants are analysed — f-strings that splice table
names or placeholder lists are outside static reach.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from ..framework import LintRule, ModuleContext, Violation, register

_SCHEMA_NAMES = ("_SCHEMA", "SCHEMA")

_CREATE_TABLE_RE = re.compile(
    r"CREATE\s+TABLE(?:\s+IF\s+NOT\s+EXISTS)?\s+(\w+)\s*\((.*?)\)\s*;",
    re.IGNORECASE | re.DOTALL,
)
_CREATE_INDEX_RE = re.compile(
    r"CREATE\s+INDEX(?:\s+IF\s+NOT\s+EXISTS)?\s+\w+\s+ON\s+(\w+)\s*\(([^)]*)\)",
    re.IGNORECASE,
)
# Deliberately case-sensitive: prose like "Insert one visit's rows" must
# not be mistaken for SQL, and this codebase writes SQL keywords upper-case.
_SQL_HEAD_RE = re.compile(r"\s*(SELECT|INSERT|UPDATE|DELETE)\b")
_TABLE_REF_RE = re.compile(r"\b(?:FROM|INTO|UPDATE|JOIN)\s+(\w+)", re.IGNORECASE)
_INSERT_RE = re.compile(
    r"\s*INSERT\s+INTO\s+(\w+)\s*(?:\(([^)]*)\))?\s*VALUES\s*\((.*)\)",
    re.IGNORECASE | re.DOTALL,
)
_IDENTIFIER_RE = re.compile(r"[A-Za-z_]\w*")
_STRING_LITERAL_RE = re.compile(r"'[^']*'")

#: SQL keywords, functions and type names that are not column references.
_SQL_WORDS = frozenset(
    """
    abs and as asc avg between by case cast coalesce count delete desc
    distinct else end exists from full group having if ifnull in inner
    insert instr into is join key left length like limit lower ltrim max
    min not notnull null offset on or order outer primary replace right
    rowid rtrim select set substr sum then trim union update upper using
    values when where
    """.split()
)


def _split_columns(body: str) -> List[str]:
    """Split a CREATE TABLE body on top-level commas only."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


_TABLE_CONSTRAINTS = frozenset({"primary", "foreign", "unique", "check", "constraint"})


def _parse_schema(schema_sql: str) -> Dict[str, List[str]]:
    """Table name → ordered column names, from CREATE TABLE statements."""
    tables: Dict[str, List[str]] = {}
    for match in _CREATE_TABLE_RE.finditer(schema_sql):
        table, body = match.group(1), match.group(2)
        columns: List[str] = []
        for item in _split_columns(body):
            words = item.split()
            if not words or words[0].lower() in _TABLE_CONSTRAINTS:
                continue
            columns.append(words[0])
        tables[table] = columns
    return tables


def _schema_constant(module: ModuleContext) -> Optional[Tuple[ast.AST, str]]:
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in _SCHEMA_NAMES
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                return node, value.value
    return None


@register
class SchemaConsistency(LintRule):
    rule_id = "SQL001"
    summary = "SQL string disagrees with the module's _SCHEMA constant"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        found = _schema_constant(module)
        if found is None:
            return
        schema_node, schema_sql = found
        tables = _parse_schema(schema_sql)
        yield from self._check_indexes(module, schema_node, schema_sql, tables)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _SQL_HEAD_RE.match(node.value)
            ):
                continue
            if node.value == schema_sql:
                continue
            yield from self._check_query(module, node, node.value, tables)

    def _check_indexes(
        self,
        module: ModuleContext,
        schema_node: ast.AST,
        schema_sql: str,
        tables: Dict[str, List[str]],
    ) -> Iterator[Violation]:
        for match in _CREATE_INDEX_RE.finditer(schema_sql):
            table = match.group(1)
            if table not in tables:
                yield self.flag(
                    module,
                    schema_node,
                    f"CREATE INDEX references unknown table {table}",
                )
                continue
            for column in _IDENTIFIER_RE.findall(match.group(2)):
                if column not in tables[table]:
                    yield self.flag(
                        module,
                        schema_node,
                        f"CREATE INDEX references unknown column "
                        f"{table}.{column}",
                    )

    def _check_query(
        self,
        module: ModuleContext,
        node: ast.AST,
        sql: str,
        tables: Dict[str, List[str]],
    ) -> Iterator[Violation]:
        referenced = _TABLE_REF_RE.findall(sql)
        if not referenced:
            # No FROM/INTO/UPDATE/JOIN clause — nothing to cross-check.
            return
        unknown_tables = [table for table in referenced if table not in tables]
        for table in unknown_tables:
            yield self.flag(
                module,
                node,
                f"query references unknown table {table} "
                f"(schema defines: {', '.join(sorted(tables))})",
            )
        if unknown_tables:
            return
        insert = _INSERT_RE.match(sql)
        if insert is not None:
            yield from self._check_insert(module, node, insert, tables)
            return
        known_columns = {
            column for table in referenced for column in tables[table]
        }
        cleaned = _STRING_LITERAL_RE.sub("", sql)
        flagged = set()
        for word in _IDENTIFIER_RE.findall(cleaned):
            if word.lower() in _SQL_WORDS or word in tables or word in known_columns:
                continue
            if word in flagged:
                continue
            flagged.add(word)
            yield self.flag(
                module,
                node,
                f"identifier {word} is not a column of "
                f"{', '.join(sorted(set(referenced)))}",
            )

    def _check_insert(
        self,
        module: ModuleContext,
        node: ast.AST,
        insert: "re.Match[str]",
        tables: Dict[str, List[str]],
    ) -> Iterator[Violation]:
        table, column_list, values = insert.group(1), insert.group(2), insert.group(3)
        columns = tables[table]
        expected = len(columns)
        if column_list is not None:
            listed = _IDENTIFIER_RE.findall(column_list)
            for column in listed:
                if column not in columns:
                    yield self.flag(
                        module,
                        node,
                        f"INSERT lists unknown column {table}.{column}",
                    )
            expected = len(listed)
        if re.fullmatch(r"[\s?,]*", values):
            placeholders = values.count("?")
            if placeholders != expected:
                yield self.flag(
                    module,
                    node,
                    f"INSERT INTO {table} has {placeholders} placeholders for "
                    f"{expected} columns",
                )


def _parse_primary_keys(schema_sql: str) -> Dict[str, List[str]]:
    """Table name → PRIMARY KEY columns (inline or table-level)."""
    keys: Dict[str, List[str]] = {}
    for match in _CREATE_TABLE_RE.finditer(schema_sql):
        table, body = match.group(1), match.group(2)
        pk: List[str] = []
        for item in _split_columns(body):
            words = item.split()
            if not words:
                continue
            lowered = [word.lower() for word in words]
            if lowered[0] == "primary":
                # Table-level constraint: PRIMARY KEY (a, b)
                paren = item.find("(")
                if paren >= 0:
                    pk = _IDENTIFIER_RE.findall(item[paren:])
            elif lowered[0] not in _TABLE_CONSTRAINTS and "primary" in lowered:
                pk = [words[0]]
        keys[table] = pk
    return keys


_ORDER_BY_RE = re.compile(
    r"\bORDER\s+BY\s+(.*?)(?:\bLIMIT\b|;|\Z)", re.IGNORECASE | re.DOTALL
)
_GROUP_BY_RE = re.compile(
    r"\bGROUP\s+BY\s+(.*?)(?:\bHAVING\b|\bORDER\b|\bLIMIT\b|;|\Z)",
    re.IGNORECASE | re.DOTALL,
)
_DISTINCT_SELECT_RE = re.compile(
    r"\A\s*SELECT\s+DISTINCT\s+(.*?)\bFROM\b", re.IGNORECASE | re.DOTALL
)
_BARE_TERM_RE = re.compile(r"\A(\w+)(?:\s+(?:ASC|DESC))?\Z", re.IGNORECASE)
_EQ_BOUND_RE = re.compile(r"\b(\w+)\s*=\s*(?:\?|\d+|'[^']*')")


def _bare_columns(clause: str) -> Optional[List[str]]:
    """Clause → bare column names, or None if any term is an expression."""
    columns: List[str] = []
    for term in clause.split(","):
        match = _BARE_TERM_RE.match(term.strip())
        if match is None:
            return None
        columns.append(match.group(1))
    return columns


@register
class UniqueOrdering(LintRule):
    rule_id = "SQL002"
    summary = "ORDER BY does not pin a total order (unique key not covered)"

    #: Logical unique keys for append-only tables without a PRIMARY KEY.
    #: The crawler never writes two rows identical in these columns, so
    #: covering them makes an ORDER BY total even though SQLite does not
    #: enforce the uniqueness.
    logical_keys: Dict[str, Tuple[str, ...]] = {
        "javascript_cookies": ("visit_id", "name", "domain", "path", "set_by_url"),
        "http_redirects": ("visit_id", "from_request_id"),
    }

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        found = _schema_constant(module)
        if found is None:
            return
        _, schema_sql = found
        tables = _parse_schema(schema_sql)
        primary_keys = _parse_primary_keys(schema_sql)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _SQL_HEAD_RE.match(node.value)
            ):
                continue
            yield from self._check_query(
                module, node, node.value, tables, primary_keys
            )

    def _check_query(
        self,
        module: ModuleContext,
        node: ast.AST,
        sql: str,
        tables: Dict[str, List[str]],
        primary_keys: Dict[str, List[str]],
    ) -> Iterator[Violation]:
        order_match = _ORDER_BY_RE.search(sql)
        if order_match is None:
            return
        referenced = set(_TABLE_REF_RE.findall(sql))
        if len(referenced) != 1:
            # Joins and subqueries are outside this rule's static reach.
            return
        table = referenced.pop()
        if table not in tables:
            return  # SQL001's department
        order_columns = _bare_columns(order_match.group(1))
        if order_columns is None:
            return  # expression term (MIN(x), COUNT(...)) — skip
        key = self._unique_key(sql, table, primary_keys)
        if key is None:
            yield self.flag(
                module,
                node,
                f"ORDER BY on {table} but no unique key is known for it — "
                f"declare one in UniqueOrdering.logical_keys or add a "
                f"PRIMARY KEY",
            )
            return
        pinned = set(order_columns)
        pinned.update(_EQ_BOUND_RE.findall(sql))
        missing = [column for column in key if column not in pinned]
        if missing:
            yield self.flag(
                module,
                node,
                f"ORDER BY ({', '.join(order_columns)}) is not total for "
                f"{table}: unique key columns {', '.join(missing)} are "
                f"neither sorted on nor pinned by equality",
            )

    def _unique_key(
        self, sql: str, table: str, primary_keys: Dict[str, List[str]]
    ) -> Optional[List[str]]:
        """The unique key the ORDER BY must cover, or None if unknown."""
        group_match = _GROUP_BY_RE.search(sql)
        if group_match is not None:
            # Grouped output: one row per distinct group-key tuple.
            return _bare_columns(group_match.group(1))
        distinct_match = _DISTINCT_SELECT_RE.match(sql)
        if distinct_match is not None:
            columns = _bare_columns(distinct_match.group(1))
            if columns is not None:
                return columns
        if primary_keys.get(table):
            return primary_keys[table]
        logical = self.logical_keys.get(table)
        return list(logical) if logical is not None else None
