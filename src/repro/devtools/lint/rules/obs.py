"""Observability rules: OBS001 (no ``print`` in library code) and
OBS002 (metric and span names must be literal constants).

A measurement pipeline that prints from the middle of the crawl cannot
be audited: stray stdout interleaves nondeterministically across worker
processes and never reaches the trace or the metrics registry.  Library
modules therefore emit telemetry via :mod:`repro.obs` and leave printing
to the presentation layer (OBS001).

Telemetry names are part of the schema the run ledger byte-compares:
a span or counter named through an f-string or concatenation mints a
new time series per dynamic value, breaks cross-run diffs, and defeats
grep.  Dynamic identity belongs in span ``key=`` / metric labels, so
the first argument of ``span(...)``, ``counter(...)``, ``gauge(...)``,
and ``histogram(...)`` must be a string literal or a name bound to one
(OBS002).

Exempt from OBS001 by construction:

* ``repro/reporting/`` and ``repro/devtools/`` — rendering and developer
  tooling *are* the presentation layer;
* ``cli.py`` / ``__main__.py`` modules — command-line glue whose job is
  to print.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import LintRule, ModuleContext, Violation, register

#: Path fragments marking presentation/tooling packages (always allowed).
_EXEMPT_FRAGMENTS = ("/reporting/", "/devtools/")

#: Module basenames that are command-line glue (always allowed).
_EXEMPT_BASENAMES = ("cli.py", "__main__.py")


def _is_exempt(posix_path: str) -> bool:
    if any(fragment in posix_path for fragment in _EXEMPT_FRAGMENTS):
        return True
    return posix_path.rsplit("/", 1)[-1] in _EXEMPT_BASENAMES


@register
class NoPrintInLibraryCode(LintRule):
    rule_id = "OBS001"
    summary = "print() in library code; use repro.obs / repro.reporting instead"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if _is_exempt(module.posix_path):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.flag(
                    module,
                    node,
                    "library code must not print; record telemetry via "
                    "repro.obs or render through repro.reporting",
                )


#: Telemetry constructors whose first argument names a series/span.
_NAMED_TELEMETRY_CALLS = ("counter", "gauge", "histogram", "span")


@register
class LiteralTelemetryNames(LintRule):
    rule_id = "OBS002"
    summary = "metric/span name built dynamically; use a literal constant"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                call_name = func.attr
            elif isinstance(func, ast.Name):
                call_name = func.id
            else:
                continue
            if call_name not in _NAMED_TELEMETRY_CALLS:
                continue
            name_arg = node.args[0]
            # Literals and names bound to module-level constants are
            # fine; anything *built* at the call site is a violation.
            if isinstance(name_arg, (ast.JoinedStr, ast.BinOp, ast.Call)):
                yield self.flag(
                    module,
                    name_arg,
                    f"{call_name}() name must be a literal constant; put "
                    "dynamic identity in key=/labels, not the series name",
                )
