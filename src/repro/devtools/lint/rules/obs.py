"""OBS001: library code must not ``print`` — route output through
``repro.obs`` or ``repro.reporting``.

A measurement pipeline that prints from the middle of the crawl cannot
be audited: stray stdout interleaves nondeterministically across worker
processes and never reaches the trace or the metrics registry.  Library
modules therefore emit telemetry via :mod:`repro.obs` and leave printing
to the presentation layer.

Exempt by construction:

* ``repro/reporting/`` and ``repro/devtools/`` — rendering and developer
  tooling *are* the presentation layer;
* ``cli.py`` / ``__main__.py`` modules — command-line glue whose job is
  to print.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import LintRule, ModuleContext, Violation, register

#: Path fragments marking presentation/tooling packages (always allowed).
_EXEMPT_FRAGMENTS = ("/reporting/", "/devtools/")

#: Module basenames that are command-line glue (always allowed).
_EXEMPT_BASENAMES = ("cli.py", "__main__.py")


def _is_exempt(posix_path: str) -> bool:
    if any(fragment in posix_path for fragment in _EXEMPT_FRAGMENTS):
        return True
    return posix_path.rsplit("/", 1)[-1] in _EXEMPT_BASENAMES


@register
class NoPrintInLibraryCode(LintRule):
    rule_id = "OBS001"
    summary = "print() in library code; use repro.obs / repro.reporting instead"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if _is_exempt(module.posix_path):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.flag(
                    module,
                    node,
                    "library code must not print; record telemetry via "
                    "repro.obs or render through repro.reporting",
                )
