"""Observability rules: OBS001 (no ``print`` in library code),
OBS002 (metric and span names must be literal constants), and OBS003
(alert names / detector thresholds literal; detectors read-only).

A measurement pipeline that prints from the middle of the crawl cannot
be audited: stray stdout interleaves nondeterministically across worker
processes and never reaches the trace or the metrics registry.  Library
modules therefore emit telemetry via :mod:`repro.obs` and leave printing
to the presentation layer (OBS001).

Telemetry names are part of the schema the run ledger byte-compares:
a span or counter named through an f-string or concatenation mints a
new time series per dynamic value, breaks cross-run diffs, and defeats
grep.  Dynamic identity belongs in span ``key=`` / metric labels, so
the first argument of ``span(...)``, ``counter(...)``, ``gauge(...)``,
and ``histogram(...)`` must be a string literal or a name bound to one
(OBS002).

The live monitor extends the same schema discipline to alerting
(OBS003).  Alert names and detector thresholds feed the run ledger's
byte-compared ``alerts`` section, so both must be literal constants or
names bound to them — a threshold computed at the call site drifts
between runs and defeats cross-run comparison.  Detectors themselves
are *observers*: a detector that mutates the metrics registry from its
callback changes the telemetry it is judging, making alert output
dependent on detector evaluation order.

Exempt from OBS001 by construction:

* ``repro/reporting/`` and ``repro/devtools/`` — rendering and developer
  tooling *are* the presentation layer;
* ``cli.py`` / ``__main__.py`` modules — command-line glue whose job is
  to print.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import LintRule, ModuleContext, Violation, dotted_name, register

#: Path fragments marking presentation/tooling packages (always allowed).
_EXEMPT_FRAGMENTS = ("/reporting/", "/devtools/")

#: Module basenames that are command-line glue (always allowed).
_EXEMPT_BASENAMES = ("cli.py", "__main__.py")


def _is_exempt(posix_path: str) -> bool:
    if any(fragment in posix_path for fragment in _EXEMPT_FRAGMENTS):
        return True
    return posix_path.rsplit("/", 1)[-1] in _EXEMPT_BASENAMES


@register
class NoPrintInLibraryCode(LintRule):
    rule_id = "OBS001"
    summary = "print() in library code; use repro.obs / repro.reporting instead"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if _is_exempt(module.posix_path):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.flag(
                    module,
                    node,
                    "library code must not print; record telemetry via "
                    "repro.obs or render through repro.reporting",
                )


#: Telemetry constructors whose first argument names a series/span.
_NAMED_TELEMETRY_CALLS = ("counter", "gauge", "histogram", "span")


@register
class LiteralTelemetryNames(LintRule):
    rule_id = "OBS002"
    summary = "metric/span name built dynamically; use a literal constant"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                call_name = func.attr
            elif isinstance(func, ast.Name):
                call_name = func.id
            else:
                continue
            if call_name not in _NAMED_TELEMETRY_CALLS:
                continue
            name_arg = node.args[0]
            # Literals and names bound to module-level constants are
            # fine; anything *built* at the call site is a violation.
            if isinstance(name_arg, (ast.JoinedStr, ast.BinOp, ast.Call)):
                yield self.flag(
                    module,
                    name_arg,
                    f"{call_name}() name must be a literal constant; put "
                    "dynamic identity in key=/labels, not the series name",
                )


#: Keyword fragments marking a detector tuning knob.
_THRESHOLD_MARKERS = ("threshold", "factor", "rate", "window", "limit", "gap")

#: Method names that mutate a metrics registry or its instruments.
_REGISTRY_MUTATORS = (
    "counter",
    "gauge",
    "histogram",
    "inc",
    "set",
    "observe",
    "merge",
    "merge_all",
)

#: Receiver names that identify the metrics registry in a call chain.
_REGISTRY_RECEIVERS = ("metrics", "registry")

#: Expression kinds built at the call site (vs. literal/named constants).
_DYNAMIC_EXPRS = (ast.JoinedStr, ast.BinOp, ast.Call)


def _receiver_parts(node: ast.AST) -> Iterator[str]:
    """Name/attribute components of a call receiver, through chained calls.

    ``self.metrics.counter("x").inc`` yields ``inc, counter, metrics,
    self`` — enough to spot a registry anywhere in the chain, which
    :func:`~..framework.dotted_name` cannot (it bails at the inner call).
    """
    while True:
        if isinstance(node, ast.Attribute):
            yield node.attr
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            yield node.id
            return
        else:
            return


@register
class DeterministicAlerting(LintRule):
    rule_id = "OBS003"
    summary = (
        "alert name/detector threshold built dynamically, or detector "
        "mutates the metrics registry"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_alert_name(module, node)
                yield from self._check_detector_thresholds(module, node)
            elif isinstance(node, ast.ClassDef) and node.name.endswith(
                "Detector"
            ):
                yield from self._check_detector_body(module, node)

    @staticmethod
    def _callee(node: ast.Call) -> str:
        name = dotted_name(node.func)
        return name.rsplit(".", 1)[-1] if name else ""

    def _check_alert_name(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Violation]:
        if self._callee(node) != "Alert":
            return
        name_arg = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "name":
                name_arg = keyword.value
        if isinstance(name_arg, _DYNAMIC_EXPRS):
            yield self.flag(
                module,
                name_arg,
                "Alert name must be a literal constant; the ledger "
                "byte-compares alerts across runs, so dynamic names "
                "break drift detection",
            )

    def _check_detector_thresholds(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Violation]:
        callee = self._callee(node)
        if not callee.endswith("Detector"):
            return
        for keyword in node.keywords:
            if keyword.arg is None or not any(
                marker in keyword.arg for marker in _THRESHOLD_MARKERS
            ):
                continue
            if isinstance(keyword.value, _DYNAMIC_EXPRS):
                yield self.flag(
                    module,
                    keyword.value,
                    f"{callee}({keyword.arg}=...) must be a literal "
                    "constant or a name bound to one; computed thresholds "
                    "drift between runs",
                )

    def _check_detector_body(
        self, module: ModuleContext, node: ast.ClassDef
    ) -> Iterator[Violation]:
        nested: set = set()  # chained calls already covered by an outer flag
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call) or not isinstance(
                inner.func, ast.Attribute
            ):
                continue
            if id(inner) in nested or inner.func.attr not in _REGISTRY_MUTATORS:
                continue
            parts = list(_receiver_parts(inner.func.value))
            if any(part in _REGISTRY_RECEIVERS for part in parts):
                yield self.flag(
                    module,
                    inner,
                    f"detector {node.name} must not mutate the metrics "
                    f"registry ({inner.func.attr}()); detectors observe "
                    "the stream, they do not write telemetry",
                )
                nested.update(
                    id(sub)
                    for sub in ast.walk(inner)
                    if isinstance(sub, ast.Call) and sub is not inner
                )
