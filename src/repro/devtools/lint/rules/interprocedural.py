"""Whole-program rules: DET101, DET103, CONC001, CONC002.

These run in the second (program) pass over the
:class:`~repro.devtools.lint.callgraph.ProjectIndex` and catch the bug
classes a per-file rule structurally cannot see: seed provenance handed
across module boundaries, shared state touched from worker-executed
code, and unordered iteration flowing through a call into an ordered
sink.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..callgraph import ProjectIndex
from ..framework import ProgramRule, Violation, register_program

#: Module components whose code is a determinism *sink*: anything the
#: crawl, tree construction, analysis or bundle layers consume must be
#: derived from the experiment seed.
SEED_SINK_COMPONENTS = frozenset({"crawler", "crawl", "trees", "analysis", "bundle"})

_ORIGIN_DESCRIPTIONS = {
    "unseeded": "an unseeded random.Random() (OS-entropy seeded)",
    "constant": "a constant-seeded random.Random()",
    "wall-clock": "a wall-clock-seeded random.Random()",
    "os-entropy": "an OS-entropy-derived RNG",
    "entropy-call": "an RNG seeded from a wall-clock/entropy-returning helper",
}


def _is_sink_module(module_name: str) -> bool:
    return not SEED_SINK_COMPONENTS.isdisjoint(module_name.split("."))


@register_program
class SeedProvenance(ProgramRule):
    """DET101: RNGs reaching crawl/trees/analysis/bundle code must be
    seed-derived.

    Interprocedural taint: a function *produces a tainted RNG* when it
    returns an RNG born from a constant, the wall clock, or OS entropy —
    directly, or by returning another producer's result (any number of
    hops).  Every call to a producer from a sink-package function is
    flagged at the call site; deriving the stream with
    ``repro.rng.child_rng(seed, *labels)`` is the fix.
    """

    rule_id = "DET101"
    summary = (
        "RNG not derived from the crawl seed reaches crawl/trees/analysis/"
        "bundle code"
    )

    def _direct_producers(self, project: ProjectIndex) -> Dict[str, str]:
        entropy_direct = {
            fq: "returns a wall-clock/OS-entropy value"
            for fq, (_, function) in project.functions.items()
            if function.returns_entropy
        }
        entropy = project.returns_closure(entropy_direct)
        producers: Dict[str, str] = {}
        for fq in sorted(project.functions):
            module, function = project.functions[fq]
            birth = function.returns_rng
            if birth is None:
                continue
            if birth.kind in _ORIGIN_DESCRIPTIONS:
                producers[fq] = _ORIGIN_DESCRIPTIONS[birth.kind]
            elif birth.kind == "call":
                seed_call = birth.seed_call
                callee: Optional[str] = None
                if seed_call is not None:
                    callee = project.resolve_call(module, function, seed_call)
                if callee is not None and callee in entropy:
                    producers[fq] = _ORIGIN_DESCRIPTIONS["entropy-call"]
        return producers

    def check(self, project: ProjectIndex) -> Iterator[Violation]:
        producers = project.returns_closure(self._direct_producers(project))
        if not producers:
            return
        for fq in sorted(project.functions):
            module, function = project.functions[fq]
            if not _is_sink_module(module.module):
                continue
            for call in function.calls:
                callee = project.resolve_call(module, function, call.name)
                if callee is None or callee not in producers:
                    continue
                if callee == fq:
                    continue
                yield self.flag_at(
                    module.path,
                    call.lineno,
                    call.col,
                    f"{call.name}() hands {module.module}.{function.qualname} "
                    f"{producers[callee]} ({callee}); derive it from the crawl "
                    "seed with repro.rng.child_rng(seed, *labels)",
                )


@register_program
class UnorderedFlow(ProgramRule):
    """DET103: unordered iteration reaching an ordered sink across calls.

    Generalizes DET003: a function returning a set / ``dict.keys()``
    view (directly or through ``return f(...)`` chains) must not have
    its result fed raw into ``list``/``tuple``/``enumerate``/``join`` or
    a list comprehension anywhere in the project — the order would
    depend on ``PYTHONHASHSEED``.  Wrapping the call in ``sorted(...)``
    sanctions it.
    """

    rule_id = "DET103"
    summary = (
        "set/dict.keys() return value feeds an ordered sink through a call "
        "chain; wrap in sorted(...)"
    )

    def check(self, project: ProjectIndex) -> Iterator[Violation]:
        direct = {
            fq: "returns a set/dict.keys() value"
            for fq, (_, function) in project.functions.items()
            if function.returns_unordered
        }
        producers = project.returns_closure(direct)
        if not producers:
            return
        for fq in sorted(project.functions):
            module, function = project.functions[fq]
            for feed in function.sink_feeds:
                callee = project.resolve_call(module, function, feed.callee)
                if callee is None or callee not in producers:
                    continue
                yield self.flag_at(
                    module.path,
                    feed.lineno,
                    feed.col,
                    f"{feed.callee}() returns unordered iteration "
                    f"({producers[callee]}) and feeds ordered sink "
                    f"{feed.sink}; wrap the call in sorted(...)",
                )


@register_program
class SharedMutableWrite(ProgramRule):
    """CONC001: module-level mutable state written from worker-executed code.

    Any function transitively reachable from a process-pool entry point
    (``pool.map(f, ...)``, ``pool.submit(f, ...)``, ``Process(target=f)``)
    that mutates or rebinds a module-level mutable object is a static
    race: worker processes each mutate a private copy (the write is
    silently lost), and a future thread-based pool would race for real.
    """

    rule_id = "CONC001"
    summary = (
        "module-level mutable written from a function reachable from a "
        "worker entry point"
    )

    def check(self, project: ProjectIndex) -> Iterator[Violation]:
        entries = project.worker_entries()
        if not entries:
            return
        reachable = project.reachable_from(entries)
        for fq in sorted(reachable):
            module, function = project.functions[fq]
            for write in function.global_writes:
                if write.name not in module.module_mutables:
                    continue
                yield self.flag_at(
                    module.path,
                    write.lineno,
                    write.col,
                    f"{write.action} of module-level mutable "
                    f"'{module.module}.{write.name}' in "
                    f"{function.qualname}(), which is reachable from worker "
                    f"entry point(s) {', '.join(entries)}; worker writes are "
                    "lost on fork and race under threads — pass state "
                    "explicitly or merge results in the parent",
                )


@register_program
class SingletonAttrWrite(ProgramRule):
    """CONC002: shared-singleton instance attributes written from workers.

    A module-level instance (``NULL_OBS = ObsContext.disabled()``,
    ``ALWAYS = InclusionRule()``) is shared by every importer.  When
    worker-reachable code calls a method *through the singleton* —
    directly, via an import, or via a parameter defaulting to it — and
    that method (or a method it reaches through ``self``) writes an
    instance attribute, the mutation is process-local and
    order-dependent: a static race on the shared object.
    """

    rule_id = "CONC002"
    summary = (
        "shared singleton instance attribute written from worker-reachable "
        "code"
    )

    def check(self, project: ProjectIndex) -> Iterator[Violation]:
        entries = project.worker_entries()
        if not entries:
            return
        reachable = project.reachable_from(entries)
        for fq in sorted(reachable):
            module, function = project.functions[fq]
            # Direct attribute writes on a singleton object.
            for write in function.attr_writes:
                base, _, attr = write.name.partition(".")
                fq_singleton = self._singleton_for(project, module, function, base)
                if fq_singleton is None:
                    continue
                yield self.flag_at(
                    module.path,
                    write.lineno,
                    write.col,
                    f"{write.action} of attribute '{attr}' on shared "
                    f"singleton {fq_singleton} in worker-reachable "
                    f"{function.qualname}()",
                )
            # Method calls routed through a singleton that end up writing
            # self state somewhere in the method's self-call closure.
            for call in function.calls:
                resolved, fq_singleton = project.resolve_call_ex(
                    module, function, call.name
                )
                if resolved is None or fq_singleton is None:
                    continue
                for method in sorted(project.method_closure(resolved)):
                    _, target = project.functions[method]
                    attrs = sorted({site.name for site in target.self_writes})
                    if not attrs:
                        continue
                    yield self.flag_at(
                        module.path,
                        call.lineno,
                        call.col,
                        f"{call.name}() dispatches on shared singleton "
                        f"{fq_singleton} and writes instance attribute(s) "
                        f"{', '.join(attrs)} (in {method}); shared-object "
                        "mutation from worker-reachable code is a race",
                    )
                    break

    @staticmethod
    def _singleton_for(project, module, function, base: str) -> Optional[str]:
        if base in module.singletons:
            return f"{module.module}.{base}"
        if base in function.param_defaults:
            default = function.param_defaults[base]
            if default in module.singletons:
                return f"{module.module}.{default}"
            imported = module.imports.get(default)
            if imported in project.singletons:
                return imported
        imported = module.imports.get(base)
        if imported in project.singletons:
            return imported
        return None
