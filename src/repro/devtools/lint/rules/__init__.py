"""The built-in rule pack.

Importing this package registers every rule with the framework registry;
:func:`repro.devtools.lint.framework.build_rules` does so lazily.
"""

from __future__ import annotations

from . import (  # noqa: F401  (register rules)
    concurrency,
    determinism,
    errorpolicy,
    interprocedural,
    obs,
    sql,
)

__all__ = [
    "concurrency",
    "determinism",
    "errorpolicy",
    "interprocedural",
    "obs",
    "sql",
]
