"""The built-in rule pack.

Importing this package registers every rule with the framework registry;
:func:`repro.devtools.lint.framework.build_rules` does so lazily.
"""

from __future__ import annotations

from . import determinism, errorpolicy, obs, sql  # noqa: F401  (register rules)

__all__ = ["determinism", "errorpolicy", "obs", "sql"]
