"""Concurrency rules: CONC003 (no ``pool.map`` barriers in pipeline code).

``Executor.map`` is a completion barrier in disguise: results come back
in submission order, so the caller sits idle until the *slowest* item of
every earlier position finishes, and nothing downstream can start until
the pool drains.  In this codebase every parallel stage writes its
results into a layout-indexed slot and merges commutatively, which means
``submit`` + ``as_completed`` preserves determinism exactly — consume
each result the moment it lands, keyed back to its layout index — while
letting downstream stages (shard hand-off, streamed folds) overlap with
the stragglers.  CONC003 flags ``.map(...)`` on pool/executor receivers
so the barrier is a deliberate, suppressed choice rather than a default.

Exempt by construction: ``repro/devtools/`` — developer tooling runs
short, uniform batches where the barrier is harmless and the simpler
idiom wins.  Elsewhere, a genuinely-wanted barrier takes a
``# repro: ok[CONC003] <reason>`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import LintRule, ModuleContext, Violation, register

#: Path fragments whose pools are allowed to barrier (tooling batches).
_EXEMPT_FRAGMENTS = ("/devtools/",)

#: Receiver name components that identify a process/thread pool.
_POOL_RECEIVERS = ("pool", "executor")


def _receiver_parts(node: ast.AST) -> Iterator[str]:
    """Name/attribute components of a call receiver, through chained calls."""
    while True:
        if isinstance(node, ast.Attribute):
            yield node.attr
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            yield node.id
            return
        else:
            return


@register
class NoPoolMapBarrier(LintRule):
    rule_id = "CONC003"
    summary = "pool.map() barrier; submit + as_completed preserves determinism"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if any(
            fragment in module.posix_path for fragment in _EXEMPT_FRAGMENTS
        ):
            return
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Attribute)
                or node.func.attr != "map"
            ):
                continue
            parts = [
                part.lower() for part in _receiver_parts(node.func.value)
            ]
            if any(
                pool_marker in part
                for part in parts
                for pool_marker in _POOL_RECEIVERS
            ):
                yield self.flag(
                    module,
                    node,
                    "Executor.map is a completion barrier; submit futures "
                    "keyed by layout index and consume with as_completed — "
                    "order-restoring merge keeps output deterministic while "
                    "downstream work overlaps",
                )
