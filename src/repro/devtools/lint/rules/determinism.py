"""Determinism rules: DET001 (randomness), DET002 (wall clock),
DET003 (unordered iteration into ordered sinks), DET004 (directory order).

The reproduction's headline guarantee is that a crawl and its analyses
are byte-identical regardless of worker count or host machine.  Each rule
here encodes one way that guarantee historically breaks in measurement
code: process-global RNGs, wall-clock reads, hash-order iteration, and
filesystem listing order.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..framework import LintRule, ModuleContext, Violation, dotted_name, register

#: ``random`` module-level functions that consume the process-global RNG.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

_RNG_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})

#: ``time`` module functions that read the host clock.
_CLOCK_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "localtime",
        "gmtime",
    }
)

_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today"})


@register
class UnseededRandomness(LintRule):
    """DET001: all randomness must flow through ``repro.rng``.

    Flags calls to the process-global ``random.*`` functions and
    construction of ``random.Random``/``random.SystemRandom`` anywhere but
    ``repro/rng.py`` — sibling streams must be derived with
    ``derive_seed``/``child_rng`` so results do not depend on call order
    or process layout.
    """

    rule_id = "DET001"
    summary = "unseeded randomness; route through repro.rng.derive_seed/child_rng"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if module.posix_path.endswith("repro/rng.py"):
            return
        aliases = module.module_aliases("random")
        from_random = module.imported_from("random")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            head, _, tail = name.partition(".")
            if head in aliases and tail in _GLOBAL_RANDOM_FUNCS:
                yield self.flag(
                    module,
                    node,
                    f"call to process-global random.{tail}(); "
                    "use repro.rng.child_rng(seed, *labels) instead",
                )
            elif head in aliases and tail in _RNG_CONSTRUCTORS:
                yield self.flag(
                    module,
                    node,
                    f"random.{tail}() constructed outside repro/rng.py; "
                    "derive it with repro.rng.child_rng",
                )
            elif "." not in name and from_random.get(name) in _RNG_CONSTRUCTORS:
                yield self.flag(
                    module,
                    node,
                    f"{name}() (random.{from_random[name]}) constructed outside "
                    "repro/rng.py; derive it with repro.rng.child_rng",
                )
            elif "." not in name and from_random.get(name) in _GLOBAL_RANDOM_FUNCS:
                yield self.flag(
                    module,
                    node,
                    f"call to process-global random.{from_random[name]}(); "
                    "use repro.rng.child_rng(seed, *labels) instead",
                )


@register
class WallClockRead(LintRule):
    """DET002: no wall-clock reads in library code.

    ``time.time()`` and friends make output depend on the host; simulated
    measurement time lives in the browser engine's visit clock, and
    operator-facing timing goes through the injectable
    ``repro.devtools.clock`` shim.
    """

    rule_id = "DET002"
    summary = "wall-clock read; inject a repro.devtools.clock.Clock instead"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        time_aliases = module.module_aliases("time")
        from_time = module.imported_from("time")
        datetime_aliases = module.module_aliases("datetime")
        datetime_classes = {
            local
            for local, original in module.imported_from("datetime").items()
            if original in ("datetime", "date")
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] in time_aliases and parts[1] in _CLOCK_FUNCS:
                yield self.flag(
                    module, node, f"wall-clock read time.{parts[1]}(); inject a Clock"
                )
            elif len(parts) == 1 and from_time.get(name) in _CLOCK_FUNCS:
                yield self.flag(
                    module,
                    node,
                    f"wall-clock read time.{from_time[name]}(); inject a Clock",
                )
            elif parts[-1] in _DATETIME_FACTORIES and len(parts) >= 2:
                base = parts[:-1]
                if base[0] in datetime_aliases or base[-1] in datetime_classes:
                    yield self.flag(
                        module,
                        node,
                        f"wall-clock read {name}(); inject a Clock",
                    )


def _is_unordered(node: ast.AST) -> bool:
    """Expressions whose iteration order depends on the hash seed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
    return False


def _unordered_source(node: ast.AST) -> ast.AST:
    """The unordered expression feeding ``node``, unwrapping generators."""
    if isinstance(node, ast.GeneratorExp) and node.generators:
        iterable = node.generators[0].iter
        if _is_unordered(iterable):
            return iterable
    return node


@register
class UnorderedIntoOrderedSink(LintRule):
    """DET003: set/dict-key iteration must not feed an ordered sink raw.

    ``list(a_set)``, ``tuple(d.keys())``, ``",".join(a_set)`` and list
    comprehensions over sets produce sequences whose order varies with
    ``PYTHONHASHSEED``; every ordered output must go through
    ``sorted(...)`` first.
    """

    rule_id = "DET003"
    summary = "unordered set/dict.keys() feeds an ordered sink; wrap in sorted(...)"

    _SINKS = frozenset({"list", "tuple", "enumerate"})

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                is_join = (
                    isinstance(node.func, ast.Attribute) and node.func.attr == "join"
                )
                if (name in self._SINKS or is_join) and node.args:
                    candidate = _unordered_source(node.args[0])
                    if _is_unordered(candidate):
                        sink = "str.join" if is_join else name
                        yield self.flag(
                            module,
                            candidate,
                            f"unordered iteration feeds ordered sink {sink}(); "
                            "wrap the set/keys() in sorted(...)",
                        )
            elif isinstance(node, ast.ListComp) and node.generators:
                iterable = node.generators[0].iter
                if _is_unordered(iterable):
                    yield self.flag(
                        module,
                        iterable,
                        "list comprehension over an unordered set/keys(); "
                        "wrap the iterable in sorted(...)",
                    )


@register
class UnsortedDirectoryListing(LintRule):
    """DET004: directory listings must be sorted.

    ``os.listdir``/``glob.glob`` return entries in filesystem order, which
    differs across machines and even across runs; every consumer must
    sort.
    """

    rule_id = "DET004"
    summary = "os.listdir/glob.glob without sorted(); directory order is not stable"

    _OS_FUNCS = frozenset({"listdir", "scandir", "walk"})
    _GLOB_FUNCS = frozenset({"glob", "iglob"})

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        os_aliases = module.module_aliases("os")
        glob_aliases = module.module_aliases("glob")
        from_os = module.imported_from("os")
        from_glob = module.imported_from("glob")
        sanctioned: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and dotted_name(node.func) == "sorted":
                for arg in node.args:
                    sanctioned.add(id(arg))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or id(node) in sanctioned:
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            head, _, tail = name.partition(".")
            listing = None
            if head in os_aliases and tail in self._OS_FUNCS:
                listing = f"os.{tail}"
            elif head in glob_aliases and tail in self._GLOB_FUNCS:
                listing = f"glob.{tail}"
            elif "." not in name and from_os.get(name) in self._OS_FUNCS:
                listing = f"os.{from_os[name]}"
            elif "." not in name and from_glob.get(name) in self._GLOB_FUNCS:
                listing = f"glob.{from_glob[name]}"
            if listing is not None:
                yield self.flag(
                    module,
                    node,
                    f"{listing}() without sorted(...); filesystem listing order "
                    "is machine-dependent",
                )
