"""``repro-lint``: AST-based determinism & invariant checker.

The reproduction guarantees byte-identical output across worker counts
and machines; that guarantee rests on code-level invariants (seeded RNG
streams, sorted iteration, the ReproError hierarchy, schema-consistent
SQL) that this subpackage enforces statically.  See ``framework`` for
the rule/suppression machinery, ``rules`` for the rule pack, ``walker``
for the parallel driver, and ``cli`` for the command-line front end.

Typical use::

    python -m repro.devtools.lint src/repro
    repro-lint --format json src/repro

or programmatically::

    from repro.devtools.lint import lint_paths
    violations, files_checked = lint_paths(["src/repro"], jobs=4)
"""

from __future__ import annotations

from .framework import (
    LintRule,
    ModuleContext,
    Violation,
    build_rules,
    lint_source,
    register,
    registered_rule_ids,
    rule_summaries,
)
from .reporters import render_json, render_text
from .walker import collect_files, lint_files, lint_paths

__all__ = [
    "LintRule",
    "ModuleContext",
    "Violation",
    "build_rules",
    "collect_files",
    "lint_files",
    "lint_paths",
    "lint_source",
    "register",
    "registered_rule_ids",
    "render_json",
    "render_text",
    "rule_summaries",
]
