"""``repro-lint``: AST-based determinism & invariant checker.

The reproduction guarantees byte-identical output across worker counts
and machines; that guarantee rests on code-level invariants (seeded RNG
streams, sorted iteration, the ReproError hierarchy, schema-consistent
SQL) that this subpackage enforces statically.  See ``framework`` for
the rule/suppression machinery, ``rules`` for the rule pack, ``walker``
for the parallel driver, and ``cli`` for the command-line front end.

Typical use::

    python -m repro.devtools.lint src/repro
    repro-lint --format json src/repro

or programmatically::

    from repro.devtools.lint import lint_paths
    violations, files_checked = lint_paths(["src/repro"], jobs=4)
"""

from __future__ import annotations

from .framework import (
    LintRule,
    ModuleContext,
    ProgramRule,
    Violation,
    build_program_rules,
    build_rules,
    lint_source,
    program_rule_summaries,
    register,
    register_program,
    registered_program_rule_ids,
    registered_rule_ids,
    rule_summaries,
)
from .program import ProjectReport, git_changed_files, lint_project
from .reporters import render_json, render_sarif, render_text
from .walker import collect_files, lint_files, lint_paths

__all__ = [
    "LintRule",
    "ModuleContext",
    "ProgramRule",
    "ProjectReport",
    "Violation",
    "build_program_rules",
    "build_rules",
    "collect_files",
    "git_changed_files",
    "lint_files",
    "lint_paths",
    "lint_project",
    "lint_source",
    "program_rule_summaries",
    "register",
    "register_program",
    "registered_program_rule_ids",
    "registered_rule_ids",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_summaries",
]
