"""The two-pass whole-program lint driver.

Pass 1 (parallel, cached): every file is read with tokenize-style
encoding detection, hashed, and — on cache miss — parsed once, run
through the per-file rules, and summarized into a
:class:`~.symbols.ModuleSummary`.  Pass 2 (in-process): the summaries
link into a :class:`~.callgraph.ProjectIndex` and the registered
:class:`~.framework.ProgramRule` pack runs over it.

Suppression accounting spans both passes: ``# repro: ok[DET101] reason``
silences a program finding exactly like a per-file one, and — unless
disabled — every suppression whose rule *ran but did not fire* on its
line is reported as ``SUP002`` (stale suppression).

Unparseable files degrade, never abort: a syntax error yields ``SYN001``
and the file is skipped by the program pass; a file deleted between
discovery and parse yields ``IO001``.  Findings from every other file
are unaffected.
"""

from __future__ import annotations

import io
import subprocess
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...errors import LintError
from .cache import CACHE_DIR_NAME, SummaryCache, cache_key
from .callgraph import ProjectIndex
from .framework import (
    IO_RULE_ID,
    Suppression,
    Violation,
    apply_suppressions,
    build_program_rules,
    build_rules,
    check_source,
    filter_suppressed,
    stale_suppression_violations,
)
from .symbols import ModuleSummary, summarize_module
from .walker import collect_files

try:  # ProcessPoolExecutor is optional at import time for frozen envs
    from concurrent.futures import ProcessPoolExecutor
except ImportError:  # pragma: no cover - CPython always has it
    ProcessPoolExecutor = None  # type: ignore[assignment]


def decode_python_source(data: bytes) -> str:
    """Decode source bytes honoring BOMs and coding declarations."""
    encoding, _ = tokenize.detect_encoding(io.BytesIO(data).readline)
    return data.decode(encoding)


@dataclass
class FileAnalysis:
    """Everything pass 1 produced for one file (picklable)."""

    path: str
    raw: List[Violation] = field(default_factory=list)
    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    summary: Optional[ModuleSummary] = None
    parse_failed: bool = False
    unreadable: bool = False
    cache_hit: bool = False


def _serialize(analysis: FileAnalysis) -> dict:
    return {
        "raw": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule_id": v.rule_id,
                "message": v.message,
            }
            for v in analysis.raw
        ],
        "suppressions": [
            {
                "line": s.line,
                "col": s.col,
                "rule_ids": list(s.rule_ids),
                "reason": s.reason,
            }
            for s in analysis.suppressions.values()
        ],
        "summary": analysis.summary.to_dict() if analysis.summary else None,
        "parse_failed": analysis.parse_failed,
    }


def _deserialize(path: str, payload: dict) -> FileAnalysis:
    suppressions = {
        entry["line"]: Suppression(
            line=entry["line"],
            col=entry["col"],
            rule_ids=tuple(entry["rule_ids"]),
            reason=entry["reason"],
        )
        for entry in payload.get("suppressions", [])
    }
    summary_data = payload.get("summary")
    return FileAnalysis(
        path=path,
        raw=[Violation(**entry) for entry in payload.get("raw", [])],
        suppressions=suppressions,
        summary=ModuleSummary.from_dict(summary_data) if summary_data else None,
        parse_failed=bool(payload.get("parse_failed", False)),
        cache_hit=True,
    )


def _analyze_one(
    task: Tuple[str, Optional[Tuple[str, ...]], Optional[str]]
) -> FileAnalysis:
    """Pass-1 analysis for one file; module-level so workers can pickle it."""
    path, rule_ids, cache_dir = task
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        return FileAnalysis(
            path=path,
            raw=[
                Violation(
                    path=path,
                    line=1,
                    col=0,
                    rule_id=IO_RULE_ID,
                    message=f"file vanished or unreadable: {exc}",
                )
            ],
            parse_failed=True,
            unreadable=True,
        )
    rules = build_rules(select=rule_ids)
    effective_ids = tuple(rule.rule_id for rule in rules)
    cache = SummaryCache(cache_dir)
    key = cache_key(data, effective_ids)
    cached = cache.load(key)
    if cached is not None:
        try:
            restored = _deserialize(path, cached)
        except (KeyError, TypeError, ValueError):
            restored = None
        if restored is not None:
            return restored
    try:
        source = decode_python_source(data)
    except (SyntaxError, UnicodeDecodeError, LookupError) as exc:
        analysis = FileAnalysis(
            path=path,
            raw=[
                Violation(
                    path=path,
                    line=1,
                    col=0,
                    rule_id="SYN001",
                    message=f"file does not decode: {exc}",
                )
            ],
            parse_failed=True,
        )
        cache.store(key, _serialize(analysis))
        return analysis
    checked = check_source(source, path=path, rules=rules)
    summary = None
    if checked.tree is not None:
        summary = summarize_module(path, checked.tree)
    analysis = FileAnalysis(
        path=path,
        raw=checked.raw,
        suppressions=checked.suppressions,
        summary=summary,
        parse_failed=checked.tree is None,
    )
    cache.store(key, _serialize(analysis))
    return analysis


def analyze_paths(
    files: Sequence[Path],
    rule_ids: Optional[Tuple[str, ...]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[FileAnalysis]:
    """Run pass 1 over ``files``, fanning out across ``jobs`` processes."""
    if jobs < 1:
        raise LintError(f"jobs must be >= 1, got {jobs}")
    tasks = [(str(path), rule_ids, cache_dir) for path in files]
    if jobs == 1 or len(tasks) < 2 or ProcessPoolExecutor is None:
        return [_analyze_one(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_analyze_one, tasks, chunksize=4))


@dataclass
class ProjectReport:
    """The combined two-pass result."""

    violations: List[Violation]
    files_checked: int
    cache_hits: int
    cache_misses: int
    program_rules_run: Tuple[str, ...] = ()


def git_changed_files(
    base: str = "HEAD", cwd: Optional[str] = None
) -> Set[str]:
    """Absolute paths of ``.py`` files changed vs ``base`` (plus untracked)."""
    root = Path(cwd) if cwd else Path.cwd()
    changed: Set[str] = set()
    commands = [
        ["git", "diff", "--name-only", "-z", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "-z"],
    ]
    for command in commands:
        try:
            result = subprocess.run(
                command,
                cwd=str(root),
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            raise LintError(
                f"--changed needs a git checkout: {detail.strip()}"
            ) from exc
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=str(root),
            capture_output=True,
            text=True,
            check=False,
        ).stdout.strip()
        base_dir = Path(top) if top else root
        for name in result.stdout.split("\0"):
            if name.endswith(".py"):
                changed.add(str((base_dir / name).resolve()))
    return changed


def lint_project(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Sequence[str] = (),
    jobs: int = 1,
    program: bool = False,
    cache_dir: Optional[str] = None,
    changed_files: Optional[Set[str]] = None,
    stale_check: bool = True,
) -> ProjectReport:
    """Lint ``paths`` with the two-pass driver.

    ``program=True`` enables the whole-program pass; ``cache_dir``
    enables the content-hash cache (``CACHE_DIR_NAME`` is the
    conventional location); ``changed_files`` (absolute paths) restricts
    *reported* files — the program pass still parses the whole project
    so cross-module findings in changed files stay sound.
    """
    per_file_rules = build_rules(select=select, ignore=ignore)
    program_rules = (
        build_program_rules(select=select, ignore=ignore) if program else []
    )
    rule_ids = tuple(rule.rule_id for rule in per_file_rules)

    files = collect_files(paths)
    if changed_files is not None and not program:
        files = [f for f in files if str(f.resolve()) in changed_files]
    analyses = analyze_paths(
        files, rule_ids=rule_ids, jobs=jobs, cache_dir=cache_dir
    )

    program_raw: Dict[str, List[Violation]] = {}
    if program_rules:
        summaries = [a.summary for a in analyses if a.summary is not None]
        project = ProjectIndex(summaries)
        for rule in program_rules:
            for violation in rule.check(project):
                program_raw.setdefault(violation.path, []).append(violation)

    active_ids: Set[str] = set(rule_ids)
    active_ids.update(rule.rule_id for rule in program_rules)

    reported: List[Violation] = []
    files_checked = 0
    for analysis in analyses:
        if changed_files is not None and (
            str(Path(analysis.path).resolve()) not in changed_files
        ):
            continue
        files_checked += 1
        if analysis.parse_failed:
            reported.extend(analysis.raw)
            continue
        extra = program_raw.get(analysis.path, [])
        kept = apply_suppressions(
            analysis.raw, analysis.suppressions, analysis.path
        )
        kept.extend(filter_suppressed(extra, analysis.suppressions))
        if stale_check:
            fired_by_line: Dict[int, Set[str]] = {}
            for violation in list(analysis.raw) + extra:
                fired_by_line.setdefault(violation.line, set()).add(
                    violation.rule_id
                )
            kept.extend(
                stale_suppression_violations(
                    analysis.suppressions,
                    fired_by_line,
                    active_ids,
                    analysis.path,
                )
            )
        reported.extend(kept)

    cache_hits = sum(1 for a in analyses if a.cache_hit)
    cache_misses = sum(
        1 for a in analyses if not a.cache_hit and not a.unreadable
    )
    return ProjectReport(
        violations=sorted(reported, key=lambda violation: violation.sort_key),
        files_checked=files_checked,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        program_rules_run=tuple(rule.rule_id for rule in program_rules),
    )


__all__ = [
    "CACHE_DIR_NAME",
    "FileAnalysis",
    "ProjectReport",
    "analyze_paths",
    "decode_python_source",
    "git_changed_files",
    "lint_project",
]
