"""Reporters: render violations as text, machine-readable JSON, or SARIF.

The JSON document is versioned so CI consumers can detect format drift::

    {
      "version": 1,
      "files_checked": 96,
      "violation_count": 2,
      "counts": {"DET002": 1, "ERR001": 1},
      "violations": [
        {"path": "...", "line": 10, "col": 4, "rule": "DET002",
         "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Sequence

from .framework import Violation


def rule_counts(violations: Sequence[Violation]) -> Dict[str, int]:
    return dict(sorted(Counter(v.rule_id for v in violations).items()))


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """One line per violation, then a summary (and per-rule counts)."""
    if not violations:
        return f"ok: {files_checked} file(s) clean"
    lines = [violation.format() for violation in violations]
    lines.append("")
    counts = rule_counts(violations)
    lines.extend(f"  {rule_id}: {count}" for rule_id, count in counts.items())
    affected = len({violation.path for violation in violations})
    lines.append(
        f"{len(violations)} violation(s) in {affected} of {files_checked} file(s)"
    )
    return "\n".join(lines)


JSON_REPORT_VERSION = 1


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    document = {
        "version": JSON_REPORT_VERSION,
        "files_checked": files_checked,
        "violation_count": len(violations),
        "counts": rule_counts(violations),
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule_id,
                "message": violation.message,
            }
            for violation in violations
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


#: The SARIF subset emitted (see README): version 2.1.0, one run, tool
#: driver metadata with per-rule descriptions, and for each violation a
#: ``result`` with ``ruleId``, ``level`` (always ``"error"`` — every
#: repro-lint finding is CI-blocking), ``message.text`` and one physical
#: location (1-based line, 1-based column).  No ``artifacts``,
#: ``fixes``, ``codeFlows`` or ``baseline`` support.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Descriptions for the framework pseudo-rules (not in the registry).
_PSEUDO_RULE_SUMMARIES = {
    "SYN001": "file does not parse",
    "IO001": "file vanished or unreadable between discovery and parse",
    "SUP001": "suppression comment without a reason",
    "SUP002": "stale suppression: the suppressed rule no longer fires",
}


def render_sarif(violations: Sequence[Violation], files_checked: int) -> str:
    """Render violations as a SARIF 2.1.0 log (subset documented above)."""
    from .framework import program_rule_summaries, rule_summaries

    summaries = dict(rule_summaries())
    summaries.update(dict(program_rule_summaries()))
    summaries.update(_PSEUDO_RULE_SUMMARIES)
    used_ids = sorted({violation.rule_id for violation in violations})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": summaries.get(rule_id, "(unregistered rule)")
            },
        }
        for rule_id in used_ids
    ]
    rule_index = {rule_id: index for index, rule_id in enumerate(used_ids)}
    results = [
        {
            "ruleId": violation.rule_id,
            "ruleIndex": rule_index[violation.rule_id],
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/")
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
