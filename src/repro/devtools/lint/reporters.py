"""Reporters: render a violation list as text or machine-readable JSON.

The JSON document is versioned so CI consumers can detect format drift::

    {
      "version": 1,
      "files_checked": 96,
      "violation_count": 2,
      "counts": {"DET002": 1, "ERR001": 1},
      "violations": [
        {"path": "...", "line": 10, "col": 4, "rule": "DET002",
         "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Sequence

from .framework import Violation


def rule_counts(violations: Sequence[Violation]) -> Dict[str, int]:
    return dict(sorted(Counter(v.rule_id for v in violations).items()))


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """One line per violation, then a summary (and per-rule counts)."""
    if not violations:
        return f"ok: {files_checked} file(s) clean"
    lines = [violation.format() for violation in violations]
    lines.append("")
    counts = rule_counts(violations)
    lines.extend(f"  {rule_id}: {count}" for rule_id, count in counts.items())
    affected = len({violation.path for violation in violations})
    lines.append(
        f"{len(violations)} violation(s) in {affected} of {files_checked} file(s)"
    )
    return "\n".join(lines)


JSON_REPORT_VERSION = 1


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    document = {
        "version": JSON_REPORT_VERSION,
        "files_checked": files_checked,
        "violation_count": len(violations),
        "counts": rule_counts(violations),
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule_id,
                "message": violation.message,
            }
            for violation in violations
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
