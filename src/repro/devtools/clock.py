"""Injectable clocks: the one place the package may read wall-clock time.

The determinism contract (enforced by ``repro-lint`` rule DET002) forbids
``time.time()`` / ``datetime.now()`` in library code because wall-clock
reads make output depend on the machine running it.  Code that genuinely
needs elapsed-time reporting — CLI glue printing "finished in 3.2s" —
takes a :class:`Clock` argument instead and defaults to
:class:`SystemClock`; tests inject a :class:`FakeClock` and get stable
output.

Simulated *measurement* time is a different thing entirely and lives in
the browser engine's visit clock; this module is only about real,
operator-facing timing.
"""

from __future__ import annotations

import time
from typing import Optional


class Clock:
    """Minimal clock interface: a monotonically non-decreasing ``now()``."""

    def now(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """The sanctioned real clock (monotonic, for measuring durations)."""

    def now(self) -> float:
        return time.perf_counter()  # repro: ok[DET002] the one sanctioned wall-clock read


class FakeClock(Clock):
    """A hand-cranked clock for tests: time moves only via :meth:`advance`."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards: {seconds}")
        self._now += seconds


class Stopwatch:
    """Measures elapsed time against an injectable clock.

    >>> clock = FakeClock()
    >>> watch = Stopwatch(clock)
    >>> clock.advance(2.5)
    >>> watch.elapsed()
    2.5
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock if clock is not None else SystemClock()
        self._start = self._clock.now()

    def elapsed(self) -> float:
        return self._clock.now() - self._start

    def restart(self) -> None:
        self._start = self._clock.now()
