"""``python -m repro`` — the command-line entry point."""

import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, as CLI
        # tools conventionally do.
        sys.stderr.close()
        sys.exit(0)
