"""The measurement store: OpenWPM-style tables in SQLite.

The original framework consolidates each VM's records into BigQuery; the
reproduction stores the same logical tables in SQLite (stdlib, works
in-memory or on disk).  The store is the only interface between the crawl
and the analysis: trees are rebuilt purely from stored records.
"""

from __future__ import annotations

import heapq
import json
import os
import sqlite3
from itertools import chain
from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple
from urllib.parse import quote as _uri_quote

from ..browser.callstack import CallStack
from ..browser.network import (
    CookieRecord,
    RedirectRecord,
    RequestRecord,
    ResponseRecord,
    VisitRecord,
    VisitResult,
)
from ..errors import StorageError
from ..obs import BATCH_SIZE_BUCKETS, NULL_OBS, ObsContext

#: Stored-schema generation, stamped into ``PRAGMA user_version`` on every
#: writable open and checked wherever two stores meet (read-only snapshot
#: opens, shard merges, bundle replay).  Version 1 is the pre-``attempt``/
#: ``partial`` schema; stores from that era were never stamped and read as
#: 0, which writable opens upgrade-stamp after applying the (idempotent)
#: schema script.  Bump this whenever ``_SCHEMA`` changes shape.
SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS visits (
    visit_id INTEGER PRIMARY KEY,
    profile TEXT NOT NULL,
    site TEXT NOT NULL,
    site_rank INTEGER NOT NULL,
    page_url TEXT NOT NULL,
    success INTEGER NOT NULL,
    started_at REAL NOT NULL,
    duration REAL NOT NULL,
    failure_reason TEXT,
    attempt INTEGER NOT NULL,
    partial INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_visits_page ON visits (page_url);
CREATE INDEX IF NOT EXISTS idx_visits_profile ON visits (profile);

CREATE TABLE IF NOT EXISTS http_requests (
    visit_id INTEGER NOT NULL,
    request_id INTEGER NOT NULL,
    url TEXT NOT NULL,
    top_level_url TEXT NOT NULL,
    resource_type TEXT NOT NULL,
    frame_id INTEGER NOT NULL,
    parent_frame_id INTEGER,
    timestamp REAL NOT NULL,
    call_stack TEXT NOT NULL,
    redirect_from INTEGER,
    during_interaction INTEGER NOT NULL,
    PRIMARY KEY (visit_id, request_id)
);

CREATE TABLE IF NOT EXISTS http_responses (
    visit_id INTEGER NOT NULL,
    request_id INTEGER NOT NULL,
    status INTEGER NOT NULL,
    headers TEXT NOT NULL,
    PRIMARY KEY (visit_id, request_id)
);

CREATE TABLE IF NOT EXISTS http_redirects (
    visit_id INTEGER NOT NULL,
    from_request_id INTEGER NOT NULL,
    to_request_id INTEGER NOT NULL,
    from_url TEXT NOT NULL,
    to_url TEXT NOT NULL,
    status INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_redirects_visit ON http_redirects (visit_id);

CREATE TABLE IF NOT EXISTS javascript_cookies (
    visit_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    domain TEXT NOT NULL,
    path TEXT NOT NULL,
    value TEXT NOT NULL,
    secure INTEGER NOT NULL,
    http_only INTEGER NOT NULL,
    same_site TEXT NOT NULL,
    set_by_url TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cookies_visit ON javascript_cookies (visit_id);
"""


#: Tables in dependency order.  ``visit_id`` is the first column of every
#: table, which is what lets the shard merge interleave rows by visit id.
_TABLES: Tuple[str, ...] = (
    "visits",
    "http_requests",
    "http_responses",
    "http_redirects",
    "javascript_cookies",
)


class MeasurementStore:
    """Stores and retrieves crawl records.

    Use as a context manager or call :meth:`close` explicitly.  Writes are
    transactional: one transaction per :meth:`store_visit`, one per batch
    for :meth:`store_visits` / :meth:`merge`.  On-disk stores run in WAL
    journal mode with an enlarged page cache so that many readers (the
    parallel analysis workers) can snapshot while a writer consolidates.
    """

    def __init__(
        self,
        path: str = ":memory:",
        readonly: bool = False,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.path = path
        self.readonly = readonly
        self.obs = obs if obs is not None else NULL_OBS
        if readonly:
            if path == ":memory:":
                raise StorageError("cannot open an in-memory store read-only")
            uri = f"file:{_uri_quote(os.path.abspath(path))}?mode=ro"
            self._conn = sqlite3.connect(uri, uri=True)
            try:
                self._check_schema_version()
            except StorageError:
                self._conn.close()
                raise
        else:
            self._conn = sqlite3.connect(path)
            if path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA cache_size=-65536")  # 64 MiB
            self._conn.execute("PRAGMA temp_store=MEMORY")
            self._conn.executescript(_SCHEMA)
            if self.schema_version == 0:
                self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            else:
                try:
                    self._check_schema_version()
                except StorageError:
                    self._conn.close()
                    raise

    @classmethod
    def open_readonly(cls, path: str) -> "MeasurementStore":
        """Open an existing on-disk store as a read-only snapshot.

        Worker processes use this to read concurrently without taking
        write locks (and without being able to corrupt the store).
        """
        return cls(path, readonly=True)

    # -- lifecycle ---------------------------------------------------------

    @property
    def schema_version(self) -> int:
        """The store's stamped schema generation (``PRAGMA user_version``)."""
        return self._conn.execute("PRAGMA user_version").fetchone()[0]

    def _check_schema_version(self) -> None:
        """Raise unless the store is stamped with this code's schema."""
        found = self.schema_version
        if found == SCHEMA_VERSION:
            return
        detail = "unversioned (pre-stamp) store" if found == 0 else f"version {found}"
        raise StorageError(
            f"schema version mismatch in {self.path}: {detail}, "
            f"this code expects version {SCHEMA_VERSION}"
        )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "MeasurementStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def flush(self) -> None:
        """Publish every pending write to fresh readers of :attr:`path`.

        Commits any transaction left open on this connection (Python's
        ``sqlite3`` opens implicit transactions on DML and defers the
        commit) and checkpoints the WAL back into the main database file.
        A worker process that opens :attr:`path` with a *new* connection
        sees only committed state — handing the path out without this
        barrier silently serves a store missing the last batch.  No-op
        for in-memory stores (which cannot be opened by path) and
        read-only stores (nothing to publish).
        """
        if self.readonly or self.path == ":memory:":
            return
        if self._conn.in_transaction:
            self._conn.commit()
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def snapshot_to(self, path: str) -> str:
        """Copy the full store to ``path`` (sqlite backup API).

        This is how an in-memory store becomes visible to worker
        processes: snapshot once, then every worker opens the snapshot
        read-only.
        """
        dest = sqlite3.connect(path)
        try:
            self._conn.backup(dest)
        finally:
            dest.close()
        return path

    # -- writes ------------------------------------------------------------

    def store_visit(self, result: VisitResult) -> None:
        """Persist one visit's records atomically."""
        self.store_visits((result,))

    def store_visits(self, results: Iterable[VisitResult]) -> int:
        """Persist many visits in a *single* transaction (the bulk path).

        One transaction per visit is the classic SQLite throughput trap;
        the commander batches a whole site (and the shard merge batches a
        whole shard) through this method instead.  Returns the number of
        visits written; on any integrity error the entire batch rolls
        back.
        """
        batch = list(results)
        if not batch:
            return 0
        with self._conn:
            for result in batch:
                self._insert_result(result)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("storage.batches").inc()
            metrics.counter("storage.visits_flushed").inc(len(batch))
            metrics.histogram("storage.batch_size", BATCH_SIZE_BUCKETS).observe(
                len(batch)
            )
        return len(batch)

    def merge(self, other: "MeasurementStore") -> int:
        """Copy every record of ``other`` into this store, transactionally.

        Returns the number of visits merged.
        """
        return self.merge_shards((other,))

    def merge_shards(self, others: Sequence["MeasurementStore"]) -> int:
        """Consolidate many shard stores, interleaved in visit-id order.

        Every visit lives entirely in one shard and each shard writes its
        rows in ascending visit-id order, so a k-way merge keyed on
        ``visit_id`` (the first column of every table), stable within a
        shard, reproduces exactly the physical row order a serial crawl
        would have written — the merged store is *byte-identical* to a
        serial one, not merely set-equal.  Returns the total number of
        visits merged.
        """
        for other in others:
            if other.schema_version != self.schema_version:
                raise StorageError(
                    f"cannot merge {other.path} (schema version "
                    f"{other.schema_version}) into {self.path} (schema "
                    f"version {self.schema_version})"
                )
        with self._conn:
            for table in _TABLES:
                streams = [
                    other._conn.execute(f"SELECT * FROM {table} ORDER BY rowid")
                    for other in others
                ]
                rows = heapq.merge(*streams, key=itemgetter(0))
                first = next(rows, None)
                if first is None:
                    continue
                placeholders = ", ".join("?" for _ in first)
                try:
                    self._conn.executemany(
                        f"INSERT INTO {table} VALUES ({placeholders})",
                        chain((first,), rows),
                    )
                except sqlite3.IntegrityError as exc:
                    raise StorageError(
                        f"merge collision in table {table}: {exc}"
                    ) from exc
        return sum(other.visit_count(success_only=False) for other in others)

    def _insert_result(self, result: VisitResult) -> None:
        """Insert one visit's rows (caller owns the transaction)."""
        visit = result.visit
        try:
            self._conn.execute(
                "INSERT INTO visits VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    visit.visit_id,
                    visit.profile_name,
                    visit.site,
                    visit.site_rank,
                    visit.page_url,
                    int(visit.success),
                    visit.started_at,
                    visit.duration,
                    visit.failure_reason,
                    visit.attempt,
                    int(visit.partial),
                ),
            )
        except sqlite3.IntegrityError as exc:
            raise StorageError(
                f"duplicate visit id {visit.visit_id} in visits: {exc}"
            ) from exc
        try:
            self._conn.executemany(
                "INSERT INTO http_requests VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        req.visit_id,
                        req.request_id,
                        req.url,
                        req.top_level_url,
                        req.resource_type,
                        req.frame_id,
                        req.parent_frame_id,
                        req.timestamp,
                        req.call_stack.format(),
                        req.redirect_from,
                        int(req.during_interaction),
                    )
                    for req in result.requests
                ],
            )
        except sqlite3.IntegrityError as exc:
            raise StorageError(
                f"visit {visit.visit_id}: integrity error in http_requests: {exc}"
            ) from exc
        try:
            self._conn.executemany(
                "INSERT INTO http_responses VALUES (?, ?, ?, ?)",
                [
                    (
                        resp.visit_id,
                        resp.request_id,
                        resp.status,
                        json.dumps(list(resp.headers)),
                    )
                    for resp in result.responses
                ],
            )
        except sqlite3.IntegrityError as exc:
            raise StorageError(
                f"visit {visit.visit_id}: integrity error in http_responses: {exc}"
            ) from exc
        try:
            self._conn.executemany(
                "INSERT INTO http_redirects VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (
                        red.visit_id,
                        red.from_request_id,
                        red.to_request_id,
                        red.from_url,
                        red.to_url,
                        red.status,
                    )
                    for red in result.redirects
                ],
            )
            self._conn.executemany(
                "INSERT INTO javascript_cookies VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        c.visit_id,
                        c.name,
                        c.domain,
                        c.path,
                        c.value,
                        int(c.secure),
                        int(c.http_only),
                        c.same_site,
                        c.set_by_url,
                    )
                    for c in result.cookies
                ],
            )
        except sqlite3.IntegrityError as exc:
            raise StorageError(
                f"visit {visit.visit_id}: integrity error: {exc}"
            ) from exc

    # -- reads: visits -----------------------------------------------------

    def visit(self, visit_id: int) -> Optional[VisitRecord]:
        row = self._conn.execute(
            "SELECT * FROM visits WHERE visit_id = ?", (visit_id,)
        ).fetchone()
        return _visit_from_row(row) if row else None

    def visits_for_page(self, page_url: str) -> List[VisitRecord]:
        """All visits (any profile, any outcome) to ``page_url``."""
        rows = self._conn.execute(
            "SELECT * FROM visits WHERE page_url = ? ORDER BY visit_id", (page_url,)
        ).fetchall()
        return [_visit_from_row(row) for row in rows]

    def visit_count(self, profile: Optional[str] = None, success_only: bool = False) -> int:
        query = "SELECT COUNT(*) FROM visits WHERE 1=1"
        params: List = []
        if profile is not None:
            query += " AND profile = ?"
            params.append(profile)
        if success_only:
            query += " AND success = 1"
        return self._conn.execute(query, params).fetchone()[0]

    def pages_per_site_cap(self) -> int:
        """The crawl's pages-per-site cap, inferred from the densest site."""
        row = self._conn.execute(
            "SELECT COUNT(DISTINCT page_url) FROM visits "
            "GROUP BY site ORDER BY COUNT(DISTINCT page_url) DESC LIMIT 1"
        ).fetchone()
        return max(1, row[0]) if row else 1

    def outcome_counts(self) -> List[Tuple[str, bool, Optional[str], int]]:
        """Per-profile visit outcomes: ``(profile, success, reason, count)``.

        The crawl-health report (:mod:`repro.obs.health`) uses this to
        rebuild the Table-1-style breakdown from a stored crawl, without
        needing the live :class:`~repro.crawler.commander.CrawlSummary`.
        """
        rows = self._conn.execute(
            """
            SELECT profile, success, failure_reason, COUNT(*)
            FROM visits
            GROUP BY profile, success, failure_reason
            ORDER BY profile, success, failure_reason
            """
        ).fetchall()
        return [(row[0], bool(row[1]), row[2], row[3]) for row in rows]

    def profiles(self) -> List[str]:
        rows = self._conn.execute("SELECT DISTINCT profile FROM visits ORDER BY profile")
        return [row[0] for row in rows]

    def profiles_in_crawl_order(self) -> List[str]:
        """Profiles in the order the crawl ran them.

        Visit ids are handed out profile-major within each site block, so
        the minimum visit id per profile recovers the crawl's profile
        order — which a bundle must archive, because re-running the crawl
        with profiles in any other order would re-deal every visit id.
        """
        rows = self._conn.execute(
            "SELECT profile FROM visits GROUP BY profile ORDER BY MIN(visit_id)"
        )
        return [row[0] for row in rows]

    def pages(self) -> List[str]:
        rows = self._conn.execute("SELECT DISTINCT page_url FROM visits ORDER BY page_url")
        return [row[0] for row in rows]

    def sites(self) -> List[str]:
        rows = self._conn.execute("SELECT DISTINCT site FROM visits ORDER BY site")
        return [row[0] for row in rows]

    def site_rank(self, site: str) -> Optional[int]:
        row = self._conn.execute(
            "SELECT site_rank FROM visits WHERE site = ? LIMIT 1", (site,)
        ).fetchone()
        return row[0] if row else None

    def pages_crawled_by_all(
        self, profiles: Sequence[str], include_partial: bool = False
    ) -> List[str]:
        """Pages successfully visited by *every* profile in ``profiles``.

        This is the paper's vetting step (§3.2): pages missing from any
        profile are dropped from the analysis.  ``include_partial`` also
        counts failed visits whose partial traffic was salvaged (opt-in —
        the paper has no salvage).
        """
        placeholders = ",".join("?" for _ in profiles)
        usable = "(success = 1 OR partial = 1)" if include_partial else "success = 1"
        rows = self._conn.execute(
            f"""
            SELECT page_url FROM visits
            WHERE {usable} AND profile IN ({placeholders})
            GROUP BY page_url
            HAVING COUNT(DISTINCT profile) = ?
            ORDER BY page_url
            """,
            (*profiles, len(profiles)),
        ).fetchall()
        return [row[0] for row in rows]

    def successful_visits_for_page(
        self,
        page_url: str,
        profiles: Sequence[str],
        include_partial: bool = False,
    ) -> Dict[str, VisitRecord]:
        """Map profile name → its usable visit of ``page_url``.

        The earliest *successful* attempt wins, by explicit ``ORDER BY
        visit_id`` — retried visits land later visit ids, so physical row
        order is not the attempt order and must not be relied on.  With
        ``include_partial``, a salvaged partial visit is used only when the
        profile has no fully successful visit of the page.
        """
        usable = "(success = 1 OR partial = 1)" if include_partial else "success = 1"
        placeholders = ",".join("?" for _ in profiles)
        rows = self._conn.execute(
            f"""
            SELECT * FROM visits
            WHERE page_url = ? AND {usable} AND profile IN ({placeholders})
            ORDER BY visit_id
            """,
            (page_url, *profiles),
        ).fetchall()
        result: Dict[str, VisitRecord] = {}
        partials: Dict[str, VisitRecord] = {}
        for row in rows:
            visit = _visit_from_row(row)
            if visit.success:
                result.setdefault(visit.profile_name, visit)
            else:
                partials.setdefault(visit.profile_name, visit)
        for name, visit in partials.items():
            result.setdefault(name, visit)
        return result

    def recovered_counts(self) -> Dict[str, int]:
        """Per-profile count of successful visits that needed a retry."""
        rows = self._conn.execute(
            """
            SELECT profile, COUNT(*) FROM visits
            WHERE success = 1 AND attempt > 1
            GROUP BY profile
            ORDER BY profile
            """
        ).fetchall()
        return {row[0]: row[1] for row in rows}

    # -- reads: traffic ----------------------------------------------------

    def requests_for_visit(self, visit_id: int) -> List[RequestRecord]:
        rows = self._conn.execute(
            "SELECT * FROM http_requests WHERE visit_id = ? ORDER BY request_id",
            (visit_id,),
        ).fetchall()
        return [_request_from_row(row) for row in rows]

    def responses_for_visit(self, visit_id: int) -> List[ResponseRecord]:
        rows = self._conn.execute(
            "SELECT * FROM http_responses WHERE visit_id = ? ORDER BY request_id",
            (visit_id,),
        ).fetchall()
        return [
            ResponseRecord(
                visit_id=row[0],
                request_id=row[1],
                status=row[2],
                headers=tuple((name, value) for name, value in json.loads(row[3])),
            )
            for row in rows
        ]

    def document_response(self, visit_id: int) -> Optional[ResponseRecord]:
        """The response of the visit's main document.

        The landing request always has id 1, but it may redirect; the
        headers a study audits are those of the *final* document, not of a
        30x hop.  We therefore follow the ``http_redirects`` chain from
        request 1 to its terminal request and return that response.
        """
        request_id = self._terminal_request_id(visit_id, 1)
        row = self._conn.execute(
            "SELECT * FROM http_responses WHERE visit_id = ? AND request_id = ?",
            (visit_id, request_id),
        ).fetchone()
        if row is None:
            return None
        return ResponseRecord(
            visit_id=row[0],
            request_id=row[1],
            status=row[2],
            headers=tuple((name, value) for name, value in json.loads(row[3])),
        )

    def _terminal_request_id(self, visit_id: int, request_id: int) -> int:
        """Follow redirect hops from ``request_id`` to the chain's end."""
        hops: Dict[int, int] = {}
        for from_id, to_id in self._conn.execute(
            "SELECT from_request_id, to_request_id FROM http_redirects WHERE visit_id = ?",
            (visit_id,),
        ):
            hops[from_id] = to_id
        seen = {request_id}
        while request_id in hops:
            request_id = hops[request_id]
            if request_id in seen:  # defensive: malformed cyclic chain
                break
            seen.add(request_id)
        return request_id

    def redirects_for_visit(self, visit_id: int) -> List[RedirectRecord]:
        rows = self._conn.execute(
            "SELECT * FROM http_redirects WHERE visit_id = ? ORDER BY from_request_id",
            (visit_id,),
        ).fetchall()
        return [
            RedirectRecord(
                visit_id=row[0],
                from_request_id=row[1],
                to_request_id=row[2],
                from_url=row[3],
                to_url=row[4],
                status=row[5],
            )
            for row in rows
        ]

    def cookies_for_visit(self, visit_id: int) -> List[CookieRecord]:
        # RFC 6265 identifies a cookie by (name, domain, path); the same
        # pair can exist under two paths (or setters), so ordering must
        # run through the full identity or exports and bundle digests
        # would depend on physical row order.
        rows = self._conn.execute(
            "SELECT * FROM javascript_cookies WHERE visit_id = ? "
            "ORDER BY domain, name, path, set_by_url",
            (visit_id,),
        ).fetchall()
        return [
            CookieRecord(
                visit_id=row[0],
                name=row[1],
                domain=row[2],
                path=row[3],
                value=row[4],
                secure=bool(row[5]),
                http_only=bool(row[6]),
                same_site=row[7],
                set_by_url=row[8],
            )
            for row in rows
        ]

    def request_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM http_requests").fetchone()[0]

    def iter_visits(self, success_only: bool = True) -> Iterator[VisitRecord]:
        """Stream all visits (ordered by id)."""
        query = "SELECT * FROM visits"
        if success_only:
            query += " WHERE success = 1"
        query += " ORDER BY visit_id"
        for row in self._conn.execute(query):
            yield _visit_from_row(row)

    # -- reads/writes: whole tables (bundle record/replay) -----------------

    @staticmethod
    def table_names() -> Tuple[str, ...]:
        """The store's tables, in dependency order."""
        return _TABLES

    def _require_table(self, table: str) -> None:
        if table not in _TABLES:
            raise StorageError(
                f"unknown table {table!r} (known: {', '.join(_TABLES)})"
            )

    def iter_table_rows(self, table: str) -> Iterator[Tuple]:
        """Stream one table's raw rows in physical (insertion) order.

        The crawl writes rows in a deterministic order (see
        :meth:`merge_shards`), so physical order *is* the canonical order;
        bundle serialization and fidelity diffs both key on it.
        """
        self._require_table(table)
        for row in self._conn.execute(f"SELECT * FROM {table} ORDER BY rowid"):
            yield row

    def table_row_count(self, table: str) -> int:
        self._require_table(table)
        return self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]

    def insert_table_rows(self, table: str, rows: Iterable[Sequence]) -> int:
        """Append raw rows to ``table`` in one transaction, preserving order.

        The bundle replay path: rows come back exactly as
        :meth:`iter_table_rows` yielded them, so the replayed store is
        physically identical to the recorded one.  Returns the number of
        rows written.
        """
        self._require_table(table)
        columns = len(
            self._conn.execute(f"SELECT * FROM {table} LIMIT 0").description
        )
        placeholders = ", ".join("?" for _ in range(columns))
        count = 0
        with self._conn:
            for chunk in _chunked_rows(rows, 1000):
                try:
                    self._conn.executemany(
                        f"INSERT INTO {table} VALUES ({placeholders})", chunk
                    )
                except sqlite3.IntegrityError as exc:
                    raise StorageError(
                        f"replay collision in table {table}: {exc}"
                    ) from exc
                count += len(chunk)
        return count


def _chunked_rows(rows: Iterable[Sequence], size: int) -> Iterator[List[Sequence]]:
    """Batch an iterable of rows into lists of at most ``size``."""
    chunk: List[Sequence] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _visit_from_row(row: Tuple) -> VisitRecord:
    return VisitRecord(
        visit_id=row[0],
        profile_name=row[1],
        site=row[2],
        site_rank=row[3],
        page_url=row[4],
        success=bool(row[5]),
        started_at=row[6],
        duration=row[7],
        failure_reason=row[8],
        attempt=row[9],
        partial=bool(row[10]),
    )


def _request_from_row(row: Tuple) -> RequestRecord:
    return RequestRecord(
        visit_id=row[0],
        request_id=row[1],
        url=row[2],
        top_level_url=row[3],
        resource_type=row[4],
        frame_id=row[5],
        parent_frame_id=row[6],
        timestamp=row[7],
        call_stack=CallStack.parse(row[8]),
        redirect_from=row[9],
        during_interaction=bool(row[10]),
    )
