"""A crawl client: one VM running one browser profile.

In the original framework each client is a virtual machine running 15
browser instances; here a client wraps one :class:`BrowserEngine` plus the
simulated wall clock of its VM.  Clients visit the pages the commander
hands them and return results; the commander owns storage and visit-id
allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..browser.cookies import CookieJar
from ..browser.engine import BrowserEngine
from ..browser.network import VisitResult
from ..browser.profile import BrowserProfile
from ..rng import child_rng
from ..web.blueprint import PageBlueprint


@dataclass
class ClientStats:
    """Running counters for one client.

    ``failure_reasons`` keeps the per-reason breakdown over the
    :mod:`repro.web.faults` taxonomy the commander aggregates into
    :class:`~repro.crawler.commander.CrawlSummary` — Table 1 of the paper
    reports failure *kinds*, not just counts.  ``retries`` counts visit
    attempts beyond the first; ``recovered`` the retries that succeeded;
    ``salvaged`` the failed visits whose partial traffic was kept.
    """

    visits: int = 0
    successes: int = 0
    failures: int = 0
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    recovered: int = 0
    salvaged: int = 0

    @property
    def success_rate(self) -> float:
        return self.successes / self.visits if self.visits else 0.0

    def record(
        self,
        success: bool,
        failure_reason: Optional[str],
        attempt: int = 1,
        salvaged: bool = False,
    ) -> None:
        self.visits += 1
        if attempt > 1:
            self.retries += 1
        if success:
            self.successes += 1
            if attempt > 1:
                self.recovered += 1
        else:
            self.failures += 1
            if salvaged:
                self.salvaged += 1
            reason = failure_reason if failure_reason else "unknown"
            self.failure_reasons[reason] = self.failure_reasons.get(reason, 0) + 1

    def merge(self, other: "ClientStats") -> None:
        """Fold another client's counters in (shard aggregation)."""
        self.visits += other.visits
        self.successes += other.successes
        self.failures += other.failures
        self.retries += other.retries
        self.recovered += other.recovered
        self.salvaged += other.salvaged
        for reason in sorted(other.failure_reasons):
            self.failure_reasons[reason] = (
                self.failure_reasons.get(reason, 0) + other.failure_reasons[reason]
            )


class CrawlClient:
    """Visits pages with one profile, keeping its own simulated clock.

    The per-visit clock models the paper's observation that profile visits
    to the same site start together but drift apart on the page level
    (average deviation 46 s): each client adds its own jittered think time
    between page visits.
    """

    def __init__(
        self,
        profile: BrowserProfile,
        seed: int,
        timeout: float = 30.0,
        browsers_per_vm: int = 15,
        stateful: bool = False,
        salvage_partial: bool = False,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.engine = BrowserEngine(profile, seed=seed, timeout=timeout)
        self.stats = ClientStats()
        self.clock = 0.0
        self.browsers_per_vm = browsers_per_vm
        self.stateful = stateful
        self.salvage_partial = salvage_partial
        self._jar: Optional[CookieJar] = CookieJar() if stateful else None
        self._jitter = child_rng(seed, "client-clock", profile.name)

    def visit_page(
        self,
        page: PageBlueprint,
        site: str,
        site_rank: int,
        visit_id: int,
        attempt: int = 1,
    ) -> VisitResult:
        """Visit one page and update the client clock and counters.

        The visit's duration already includes any browser hold (a stalled
        page bills the full timeout, other failures their seeded
        sub-timeout duration), so the clock advances by duration plus
        navigation overhead only — adding a second post-failure pause here
        would double-count the hold and inflate cross-profile drift.

        In stateful mode the client's cookie jar carries over between
        pages (and is reset per *site* by the commander); the paper's
        stateless mode starts every visit with an empty jar.
        """
        result = self.engine.visit(
            page,
            site=site,
            site_rank=site_rank,
            visit_id=visit_id,
            started_at=self.clock,
            jar=self._jar,
            attempt=attempt,
        )
        if result.visit.partial and not self.salvage_partial:
            # Salvage is opt-in: without it the partial traffic is dropped
            # before storage and the visit is a plain failure (the paper's
            # behaviour).  ``partial`` in the store means "traffic kept".
            result = VisitResult(visit=replace(result.visit, partial=False))
        self.clock = result.visit.started_at + result.visit.duration
        self.clock += self._jitter.uniform(0.2, 2.0)  # navigation overhead
        self.stats.record(
            result.success,
            result.visit.failure_reason,
            attempt=attempt,
            salvaged=result.visit.partial,
        )
        return result

    def synchronize(self, barrier_time: float) -> None:
        """Jump the client clock forward to a site-level barrier."""
        self.clock = max(self.clock, barrier_time)

    def begin_site(self, rank: int, start_time: float) -> None:
        """Re-anchor the client deterministically at a site's start barrier.

        The clock jumps to the site's *scheduled* start and the think-time
        jitter stream is re-derived from ``(seed, profile, rank)``, so every
        ``(site, profile)`` pair produces bit-identical records regardless
        of which worker shard — or which position in the rank sequence — it
        runs in.  This is what makes the sharded crawl equivalent to the
        serial one.
        """
        self.clock = start_time
        self._jitter = child_rng(self.seed, "client-clock", self.profile.name, rank)
        self.reset_state()

    def reset_state(self) -> None:
        """Clear the stateful cookie jar (called per site)."""
        if self._jar is not None:
            self._jar.clear()


@dataclass
class SiteVisitPlan:
    """What the commander asks every client to do for one site."""

    site: str
    rank: int
    pages: List[PageBlueprint] = field(default_factory=list)

    @property
    def page_count(self) -> int:
        return len(self.pages)
