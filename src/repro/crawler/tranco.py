"""Tranco-style ranked site list and the paper's bucket sampling (§3.1.2).

The paper samples 25k sites from the Tranco list: the full top 5k plus 5k
random sites from each of four deeper rank buckets.  :class:`RankedList`
models the list (backed by the synthetic web's rank space) and
:func:`sample_paper_buckets` reproduces the sampling scheme at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import CrawlError
from ..rng import child_rng


@dataclass(frozen=True)
class RankBucket:
    """A half-open rank range ``[start, end]`` (inclusive, 1-based)."""

    name: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 1 or self.end < self.start:
            raise CrawlError(f"bad bucket range: {self.start}-{self.end}")

    def __contains__(self, rank: int) -> bool:
        return self.start <= rank <= self.end

    @property
    def size(self) -> int:
        return self.end - self.start + 1


#: The paper's five buckets (Table 7 / §3.1.2).
PAPER_BUCKETS: Tuple[RankBucket, ...] = (
    RankBucket("1-5k", 1, 5_000),
    RankBucket("5,001-10k", 5_001, 10_000),
    RankBucket("10,001-50k", 10_001, 50_000),
    RankBucket("50,001-250k", 50_001, 250_000),
    RankBucket("250,001-500k", 250_001, 500_000),
)


def bucket_for_rank(
    rank: int, buckets: Sequence[RankBucket] = PAPER_BUCKETS
) -> RankBucket:
    """Return the bucket containing ``rank``."""
    for bucket in buckets:
        if rank in bucket:
            return bucket
    raise CrawlError(f"rank {rank} outside all buckets")


def sample_paper_buckets(
    seed: int,
    per_bucket: int,
    buckets: Sequence[RankBucket] = PAPER_BUCKETS,
) -> List[int]:
    """Sample ranks the way the paper does, scaled to ``per_bucket`` sites.

    The first bucket is taken *top-down* (the paper uses the full top 5k);
    every deeper bucket contributes ``per_bucket`` uniformly sampled ranks.
    The result is sorted, unique, and deterministic in ``seed``.
    """
    if per_bucket < 1:
        raise CrawlError("per_bucket must be >= 1")
    rng = child_rng(seed, "tranco-sample")
    ranks: List[int] = list(range(1, min(per_bucket, buckets[0].size) + 1))
    for bucket in buckets[1:]:
        count = min(per_bucket, bucket.size)
        ranks.extend(rng.sample(range(bucket.start, bucket.end + 1), count))
    return sorted(set(ranks))


class RankedList:
    """A materialized ranked list: rank → domain.

    In a real study this is the downloaded Tranco CSV; here domains come
    from the synthetic web generator so the list and the web agree.
    """

    def __init__(self, entries: Dict[int, str]) -> None:
        if not entries:
            raise CrawlError("ranked list must not be empty")
        self._by_rank = dict(entries)
        self._by_domain = {domain: rank for rank, domain in entries.items()}
        if len(self._by_domain) != len(self._by_rank):
            raise CrawlError("duplicate domains in ranked list")

    def __len__(self) -> int:
        return len(self._by_rank)

    def __contains__(self, rank: int) -> bool:
        return rank in self._by_rank

    def domain(self, rank: int) -> str:
        try:
            return self._by_rank[rank]
        except KeyError:
            raise CrawlError(f"rank {rank} not in list") from None

    def rank(self, domain: str) -> int:
        try:
            return self._by_domain[domain]
        except KeyError:
            raise CrawlError(f"domain {domain} not in list") from None

    def ranks(self) -> List[int]:
        return sorted(self._by_rank)

    def domains(self) -> List[str]:
        return [self._by_rank[rank] for rank in self.ranks()]

    @classmethod
    def from_generator(cls, generator, ranks: Sequence[int]) -> "RankedList":
        """Build the list for ``ranks`` from a ``WebGenerator``."""
        return cls({rank: generator.domain_for_rank(rank) for rank in ranks})

    # -- Tranco CSV interchange ---------------------------------------------

    def to_csv(self, path) -> int:
        """Write the list in Tranco's ``rank,domain`` CSV format."""
        count = 0
        with open(path, "w") as handle:
            for rank in self.ranks():
                handle.write(f"{rank},{self._by_rank[rank]}\n")
                count += 1
        return count

    @classmethod
    def from_csv(cls, path) -> "RankedList":
        """Read a Tranco-format ``rank,domain`` CSV.

        Blank lines are skipped; malformed lines raise
        :class:`~repro.errors.CrawlError` with the offending line number.
        """
        entries: Dict[int, str] = {}
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                rank_text, _, domain = line.partition(",")
                if not domain or not rank_text.isdigit():
                    raise CrawlError(
                        f"malformed Tranco line {line_number}: {line!r}"
                    )
                entries[int(rank_text)] = domain.strip()
        return cls(entries)
