"""The commander: semi-parallel crawl orchestration (paper Appendix C).

The commander administers the experiment: it supplies each site's page set
to all clients at once (site-level synchronization) and waits until every
client finished the site before moving on.  Page visits within a site are
*not* synchronized — each client works through the pages at its own pace —
which is exactly the paper's "semi-parallel" design.

The commander also runs the discovery pre-crawl and consolidates all
results into the :class:`~repro.crawler.storage.MeasurementStore`.

Scaling
-------
``Commander(workers=N)`` shards the site ranks across ``N`` worker
processes, each running its own clients into a private on-disk
:class:`MeasurementStore` shard; the parent merges the shards afterwards.
The sharded crawl is **bit-identical** to the serial one because every
stored value is a pure function of ``(seed, rank, profile, page, repeat)``:

* visit ids come from a deterministic schedule computed in a cheap
  discovery-only planning pass (contiguous id blocks per site, in rank
  order — the same ids the serial loop hands out);
* each site gets a scheduled start barrier, and every client re-anchors
  its clock and think-time RNG per ``(site, profile)``
  (:meth:`CrawlClient.begin_site`), so timestamps do not depend on which
  shard — or which predecessor sites — a worker happens to run.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..browser.profile import BrowserProfile, PAPER_PROFILES
from ..errors import CrawlError
from ..obs import NULL_OBS, ObsConfig, ObsContext, VISIT_SECONDS_BUCKETS
from ..obs.ledger import build_run_record, outcomes_from_summary
from ..obs.stream import KIND_SITE_END, KIND_SITE_START, KIND_VISIT, StreamEvent
from ..obs.trace import SpanRecord, split_roots
from ..rng import child_rng
from ..web.sitegen import WebGenerator
from .client import ClientStats, CrawlClient, SiteVisitPlan
from .discovery import DiscoveryResult, discover_pages
from .retry import NO_RETRIES, RetryPolicy
from .storage import MeasurementStore
from .tranco import RankedList

#: Scheduled wall-clock spacing between consecutive sites: a nominal
#: per-visit cost used only to lay out site start barriers.  Any constant
#: works for correctness (both execution modes use the same schedule).
_NOMINAL_VISIT_SECONDS = 5.0


@dataclass
class CrawlSummary:
    """Aggregate outcome of a crawl, per profile and overall.

    ``failures`` maps profile → failure reason → count over the
    :mod:`repro.web.faults` taxonomy, the breakdown the paper's Table 1
    accounts for before trusting any similarity number.  Historically the
    sharded aggregation collapsed this to bare ``(visits, successes)``
    tuples and the reasons were lost; they now ride up from every
    :class:`~repro.crawler.client.ClientStats`.  ``retries`` counts visit
    attempts beyond the first per profile; ``recovered`` the retried
    visits that succeeded.
    """

    sites_planned: int = 0
    sites_crawled: int = 0
    pages_discovered: int = 0
    visits: Dict[str, int] = field(default_factory=dict)
    successes: Dict[str, int] = field(default_factory=dict)
    failures: Dict[str, Dict[str, int]] = field(default_factory=dict)
    retries: Dict[str, int] = field(default_factory=dict)
    recovered: Dict[str, int] = field(default_factory=dict)

    def success_rate(self, profile: str) -> float:
        visits = self.visits.get(profile, 0)
        return self.successes.get(profile, 0) / visits if visits else 0.0

    def failure_count(self, profile: str, reason: Optional[str] = None) -> int:
        reasons = self.failures.get(profile, {})
        if reason is None:
            return sum(reasons.values())
        return reasons.get(reason, 0)

    def timeout_count(self, profile: str) -> int:
        # "stall-timeout" is the taxonomy name; "timeout" the pre-taxonomy
        # one (still possible in stores written by older crawls).
        return self.failure_count(profile, "stall-timeout") + self.failure_count(
            profile, "timeout"
        )

    def retry_count(self, profile: str) -> int:
        return self.retries.get(profile, 0)

    def recovered_count(self, profile: str) -> int:
        return self.recovered.get(profile, 0)

    @property
    def total_visits(self) -> int:
        return sum(self.visits.values())


@dataclass(frozen=True)
class SiteSchedule:
    """The deterministic execution slot of one site in a crawl.

    ``visit_base`` is the first visit id of the site's contiguous id block
    (profile-major: profile index, then page index, then repeat), and
    ``site_start`` the scheduled clock barrier all clients synchronize to.
    Both are pure functions of the plan, never of execution order — the
    invariant the sharded crawl rests on.
    """

    rank: int
    page_count: int
    visit_base: int
    site_start: float


@dataclass(frozen=True)
class ShardHandoff:
    """One finished crawl shard, handed to a streaming consumer.

    Delivered by :meth:`Commander.run` the moment a shard's store lands
    on disk — *completion* order, which varies run to run.  ``index`` is
    the shard's deterministic position in the layout and ``schedules``
    its sites in schedule-rank order, so consumers can restore any
    deterministic order they need.  ``db_path`` stays readable until the
    crawl's ``before_shard_cleanup`` callback returns.
    """

    index: int
    db_path: str
    schedules: Tuple[SiteSchedule, ...]

    @property
    def ranks(self) -> Tuple[int, ...]:
        return tuple(schedule.rank for schedule in self.schedules)


class Commander:
    """Runs a full measurement: discovery, then the semi-parallel crawl.

    Parameters mirror the paper's configuration: the profiles to run, pages
    per site (25 in the paper), the per-visit timeout (30 s), stateless or
    stateful cookie handling, and how many times each profile visits each
    page (``repeat_visits``; the paper visits once).  ``workers`` shards
    the site ranks across that many processes; any value produces the same
    store content (see module docstring).
    """

    def __init__(
        self,
        generator: WebGenerator,
        store: MeasurementStore,
        profiles: Sequence[BrowserProfile] = PAPER_PROFILES,
        max_pages_per_site: int = 25,
        timeout: float = 30.0,
        stateful: bool = False,
        repeat_visits: int = 1,
        workers: int = 1,
        obs: Optional[ObsContext] = None,
        retry_policy: Optional[RetryPolicy] = None,
        salvage_partial: bool = False,
    ) -> None:
        if not profiles:
            raise CrawlError("at least one profile is required")
        names = [profile.name for profile in profiles]
        if len(set(names)) != len(names):
            raise CrawlError("profile names must be unique")
        self.generator = generator
        self.store = store
        self.profiles = tuple(profiles)
        self.max_pages_per_site = max_pages_per_site
        self.timeout = timeout
        self.stateful = stateful
        if repeat_visits < 1:
            raise CrawlError("repeat_visits must be >= 1")
        self.repeat_visits = repeat_visits
        if workers < 1:
            raise CrawlError("workers must be >= 1")
        self.workers = workers
        self.obs = obs if obs is not None else NULL_OBS
        self.retry_policy = retry_policy if retry_policy is not None else NO_RETRIES
        self.salvage_partial = salvage_partial

    # -- pipeline ----------------------------------------------------------

    def run(
        self,
        ranks: Sequence[int],
        *,
        on_shard: Optional[Callable[[ShardHandoff], None]] = None,
        before_shard_cleanup: Optional[Callable[[], None]] = None,
        shard_count: Optional[int] = None,
    ) -> CrawlSummary:
        """Crawl the sites at ``ranks`` with all profiles; returns a summary.

        When the observability context carries a run ledger, the crawl
        appends a ``kind="crawl"`` run record after its crawl span
        closes — provenance, per-phase profile, metrics snapshot, and the
        per-profile outcome breakdown, diffable against any other run.

        ``on_shard`` opts into streaming consumption: the crawl always
        takes the sharded path (even at ``workers=1``) and invokes the
        callback with a :class:`ShardHandoff` as each shard's store
        lands.  ``before_shard_cleanup`` then runs after all shards are
        merged but before their on-disk stores are deleted — consumers
        drain any readers there.  ``shard_count`` optionally decouples
        layout granularity from pool width (more shards than workers
        means earlier, smaller handoffs); none of the three can change
        any stored or recorded value — see the module docstring.
        """
        tracer = self.obs.tracer
        spans_before = len(tracer.records)
        with tracer.span("crawl", key="crawl") as crawl_span:
            with tracer.span("plan", key="plan") as plan_span:
                schedules, plans = self._schedule(ranks)
                plan_span.set("sites", len(schedules))
                plan_span.set(
                    "pages", sum(item.page_count for item in schedules)
                )
            summary = CrawlSummary(
                sites_planned=len(ranks),
                sites_crawled=len(schedules),
                pages_discovered=sum(item.page_count for item in schedules),
            )
            serial = self.workers <= 1 or len(schedules) <= 1
            if on_shard is not None:
                # Streaming consumers need shard stores to hand off, so
                # the sharded path runs even at workers=1 (its output is
                # byte-identical to the serial loop's by contract).
                serial = not schedules
            if serial:
                stats = _crawl_sites(
                    self.generator,
                    self.store,
                    self.profiles,
                    schedules,
                    timeout=self.timeout,
                    stateful=self.stateful,
                    repeat_visits=self.repeat_visits,
                    max_pages_per_site=self.max_pages_per_site,
                    plans=plans,
                    obs=self.obs,
                    retry_policy=self.retry_policy,
                    salvage_partial=self.salvage_partial,
                )
                if before_shard_cleanup is not None:
                    before_shard_cleanup()
            else:
                stats = self._run_sharded(
                    schedules,
                    on_shard=on_shard,
                    before_shard_cleanup=before_shard_cleanup,
                    shard_count=shard_count,
                )
            for name, client_stats in stats.items():
                summary.visits[name] = client_stats.visits
                summary.successes[name] = client_stats.successes
                summary.failures[name] = dict(
                    sorted(client_stats.failure_reasons.items())
                )
                summary.retries[name] = client_stats.retries
                summary.recovered[name] = client_stats.recovered
            # Deterministic attrs only: worker count must not leak into
            # the trace, or byte-identity across worker counts breaks.
            crawl_span.set("sites", summary.sites_crawled)
            crawl_span.set("visits", summary.total_visits)
        if self.obs.monitor is not None:
            self.obs.monitor.finish()
        if self.obs.ledger is not None:
            self.obs.ledger.append(
                build_run_record(
                    "crawl",
                    seed=self.generator.seed,
                    config=self.resolved_config(ranks),
                    obs=self.obs,
                    records=tracer.records[spans_before:],
                    primary_phase="crawl",
                    outcomes=outcomes_from_summary(summary),
                    store_schema_version=self.store.schema_version,
                    alerts=(
                        self.obs.monitor.alerts_payload()
                        if self.obs.monitor is not None
                        else None
                    ),
                )
            )
        return summary

    def resolved_config(self, ranks: Sequence[int]) -> Dict[str, object]:
        """The resolved measurement configuration this crawl runs.

        Everything that can change a stored value is here; ``workers``
        deliberately is not — the sharding contract guarantees any worker
        count produces identical results, so ledger records from
        different worker counts must hash identically.
        """
        return {
            "seed": self.generator.seed,
            "ranks": list(ranks),
            "pages_per_site": self.max_pages_per_site,
            "profiles": [profile.name for profile in self.profiles],
            "timeout": self.timeout,
            "stateful": self.stateful,
            "repeat_visits": self.repeat_visits,
            "retries": self.retry_policy.max_attempts - 1,
            "salvage_partial": self.salvage_partial,
        }

    def discover(self, ranks: Sequence[int]) -> List[DiscoveryResult]:
        """Run only the discovery pre-crawl (useful for inspection)."""
        return [
            discover_pages(self.generator.site(rank), self.max_pages_per_site)
            for rank in ranks
        ]

    def ranked_list(self, ranks: Sequence[int]) -> RankedList:
        """The Tranco-style list backing this crawl."""
        return RankedList.from_generator(self.generator, ranks)

    # -- internals ---------------------------------------------------------

    def _schedule(
        self, ranks: Sequence[int]
    ) -> Tuple[List[SiteSchedule], Dict[int, SiteVisitPlan]]:
        """The planning pass: discovery only, no visits.

        Allocates each plannable site a contiguous visit-id block and a
        scheduled start time, cumulatively in rank order — exactly the ids
        the historical serial loop handed out.  With retries enabled the
        block is ``max_attempts`` times wider, laid out round-major: all
        attempt-1 ids first (identical to the no-retry layout), then the
        attempt-2 sub-block, and so on — so enabling retries never renames
        a first-attempt visit.
        """
        schedules: List[SiteSchedule] = []
        plans: Dict[int, SiteVisitPlan] = {}
        visit_base = 1
        site_start = 0.0
        for rank in ranks:
            plan = _plan_site(self.generator, rank, self.max_pages_per_site)
            if plan is None:
                continue
            schedules.append(
                SiteSchedule(
                    rank=rank,
                    page_count=plan.page_count,
                    visit_base=visit_base,
                    site_start=site_start,
                )
            )
            plans[rank] = plan
            site_visits = len(self.profiles) * plan.page_count * self.repeat_visits
            visit_base += site_visits * self.retry_policy.max_attempts
            site_start += plan.page_count * self.repeat_visits * _NOMINAL_VISIT_SECONDS
        return schedules, plans

    def _run_sharded(
        self,
        schedules: Sequence[SiteSchedule],
        *,
        on_shard: Optional[Callable[[ShardHandoff], None]] = None,
        before_shard_cleanup: Optional[Callable[[], None]] = None,
        shard_count: Optional[int] = None,
    ) -> Dict[str, ClientStats]:
        """Fan the schedule out to worker processes and merge their shards.

        Workers record telemetry into private tracers/registries; the
        parent re-attaches per-site span subtrees in schedule order and
        merges metrics by summation, so the consolidated telemetry — like
        the consolidated store — is identical to a serial run's.

        Shards are consumed as they complete (no ``pool.map`` barrier):
        results land in a layout-indexed list, so every downstream step —
        store merge, span adoption, event replay, metric merge — still
        runs in deterministic layout order while ``on_shard`` sees each
        shard the moment it finishes.
        """
        count = min(shard_count or self.workers, len(schedules))
        shards = [list(schedules[index::count]) for index in range(count)]
        tmpdir = tempfile.mkdtemp(prefix="repro-crawl-")
        try:
            specs = [
                _ShardSpec(
                    db_path=os.path.join(tmpdir, f"shard-{index}.sqlite"),
                    seed=self.generator.seed,
                    web_config=self.generator.config,
                    ecosystem_config=self.generator.ecosystem_config,
                    profiles=self.profiles,
                    schedules=tuple(shard),
                    timeout=self.timeout,
                    stateful=self.stateful,
                    repeat_visits=self.repeat_visits,
                    max_pages_per_site=self.max_pages_per_site,
                    obs_config=self.obs.config(),
                    retry_policy=self.retry_policy,
                    salvage_partial=self.salvage_partial,
                )
                for index, shard in enumerate(shards)
            ]
            shard_results: List[Optional[_ShardResult]] = [None] * len(specs)
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(specs))
            ) as pool:
                futures = {
                    pool.submit(_crawl_shard, spec): index
                    for index, spec in enumerate(specs)
                }
                for future in as_completed(futures):
                    index = futures[future]
                    shard_results[index] = future.result()
                    if on_shard is not None:
                        on_shard(
                            ShardHandoff(
                                index=index,
                                db_path=specs[index].db_path,
                                schedules=specs[index].schedules,
                            )
                        )
            shard_stores = [
                MeasurementStore.open_readonly(spec.db_path) for spec in specs
            ]
            try:
                self.store.merge_shards(shard_stores)
            finally:
                for shard_store in shard_stores:
                    shard_store.close()
            if before_shard_cleanup is not None:
                before_shard_cleanup()
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)
        if self.obs.tracer.enabled:
            site_spans: Dict[int, List[SpanRecord]] = {}
            for result in shard_results:
                for group in split_roots(result.spans):
                    rank = group[0].attrs.get("rank")
                    if isinstance(rank, int):
                        site_spans[rank] = group
            for schedule in schedules:
                self.obs.tracer.adopt(site_spans.get(schedule.rank, []))
        if self.obs.stream.enabled:
            # Replay worker event buffers grouped by site rank, in
            # schedule order — the event-stream analogue of span
            # adoption above.  Workers apply the same per-scope cap, so
            # republishing never re-drops; worker-side drop counts are
            # merged instead.
            site_events: Dict[int, List[StreamEvent]] = {}
            for result in shard_results:
                for event in result.events:
                    if event.site_rank is not None:
                        site_events.setdefault(event.site_rank, []).append(event)
                self.obs.stream.merge_dropped(result.dropped)
            for schedule in schedules:
                for event in site_events.get(schedule.rank, []):
                    self.obs.stream.publish(event)
        if self.obs.metrics.enabled:
            self.obs.metrics.merge_all(
                result.metrics for result in shard_results if result.metrics
            )
        totals: Dict[str, ClientStats] = {
            profile.name: ClientStats() for profile in self.profiles
        }
        for result in shard_results:
            for name, stats in result.stats.items():
                totals[name].merge(stats)
        return totals


@dataclass(frozen=True)
class _ShardSpec:
    """Everything a worker process needs to crawl its shard (picklable)."""

    db_path: str
    seed: int
    web_config: object
    ecosystem_config: object
    profiles: Tuple[BrowserProfile, ...]
    schedules: Tuple[SiteSchedule, ...]
    timeout: float
    stateful: bool
    repeat_visits: int
    max_pages_per_site: int
    obs_config: Optional[ObsConfig] = None
    retry_policy: RetryPolicy = NO_RETRIES
    salvage_partial: bool = False


@dataclass
class _ShardResult:
    """What a worker sends back: outcomes plus its shard's telemetry."""

    stats: Dict[str, ClientStats]
    spans: List[SpanRecord] = field(default_factory=list)
    metrics: Optional[Dict[str, Dict[str, object]]] = None
    events: List[StreamEvent] = field(default_factory=list)
    dropped: Dict[str, int] = field(default_factory=dict)


def _plan_site(
    generator: WebGenerator, rank: int, max_pages_per_site: int
) -> Optional[SiteVisitPlan]:
    site = generator.site(rank)
    discovery = discover_pages(site, max_pages_per_site)
    pages = [site.page_for(url) for url in discovery.pages]
    pages = [page for page in pages if page is not None]
    if not pages:
        return None
    return SiteVisitPlan(site=site.domain, rank=rank, pages=pages)


def _crawl_sites(
    generator: WebGenerator,
    store: MeasurementStore,
    profiles: Sequence[BrowserProfile],
    schedules: Sequence[SiteSchedule],
    *,
    timeout: float,
    stateful: bool,
    repeat_visits: int,
    max_pages_per_site: int,
    plans: Optional[Dict[int, SiteVisitPlan]] = None,
    obs: ObsContext = NULL_OBS,
    retry_policy: RetryPolicy = NO_RETRIES,
    salvage_partial: bool = False,
) -> Dict[str, ClientStats]:
    """Crawl ``schedules`` into ``store``; shared by serial path and workers.

    Visit ids are taken from each schedule's block, profile-major within
    each attempt round; all of a site's results are written in one batched
    transaction, sorted by visit id so shard streams stay ascending for the
    merge.  Returns the per-profile :class:`ClientStats` (visit/success
    counters plus the failure-reason breakdown and retry counters).

    Retries run after the site's first-attempt pass, per profile, in visit
    id order; the backoff jitter stream is anchored per ``(profile, rank,
    attempt)`` — see :mod:`repro.crawler.retry` for why that keeps serial
    and sharded crawls byte-identical.

    Telemetry is keyed by ``(site, profile)`` — site spans carry their
    rank, per-visit counters are labeled by profile — so the recorded
    stream is a pure function of the schedule, not of shard layout.
    """
    tracer, metrics, stream = obs.tracer, obs.metrics, obs.stream
    clients = {
        profile.name: CrawlClient(
            profile,
            seed=generator.seed,
            timeout=timeout,
            stateful=stateful,
            salvage_partial=salvage_partial,
        )
        for profile in profiles
    }
    visit_counters = {
        profile.name: metrics.counter("crawl.visits", profile=profile.name)
        for profile in profiles
    }
    success_counters = {
        profile.name: metrics.counter("crawl.successes", profile=profile.name)
        for profile in profiles
    }
    retry_counters = {
        profile.name: metrics.counter("crawl.retries", profile=profile.name)
        for profile in profiles
    }
    recovered_counters = {
        profile.name: metrics.counter("crawl.recovered", profile=profile.name)
        for profile in profiles
    }
    duration_histogram = metrics.histogram(
        "crawl.visit_seconds", VISIT_SECONDS_BUCKETS
    )

    def observe(profile_name: str, result, attempt: int) -> None:
        if stream.enabled:
            visit = result.visit
            stream.publish(
                StreamEvent(
                    kind=KIND_VISIT,
                    site_rank=visit.site_rank,
                    profile=profile_name,
                    payload={
                        "visit_id": visit.visit_id,
                        "page": visit.page_url,
                        "success": visit.success,
                        "reason": visit.failure_reason,
                        "seconds": round(visit.duration, 6),
                        "attempt": attempt,
                        "partial": visit.partial,
                    },
                )
            )
        visit_counters[profile_name].inc()
        duration_histogram.observe(result.visit.duration)
        if attempt > 1:
            retry_counters[profile_name].inc()
        if result.success:
            success_counters[profile_name].inc()
            if attempt > 1:
                recovered_counters[profile_name].inc()
        else:
            metrics.counter(
                "crawl.failures",
                profile=profile_name,
                reason=result.visit.failure_reason or "unknown",
            ).inc()

    for schedule in schedules:
        plan = (
            plans.get(schedule.rank)
            if plans is not None
            else _plan_site(generator, schedule.rank, max_pages_per_site)
        )
        if plan is None:  # cannot happen for a schedule produced by planning
            continue
        batch = []
        site_visits = len(profiles) * plan.page_count * repeat_visits
        counters_before: Dict[str, float] = {}
        if stream.enabled:
            stream.publish(
                StreamEvent(
                    kind=KIND_SITE_START,
                    site_rank=schedule.rank,
                    payload={"site": plan.site, "pages": plan.page_count},
                )
            )
            if metrics.enabled:
                counters_before = dict(metrics.scrape())
        # Site-level barrier: all clients start the site at its scheduled
        # time; stateful jars reset per site (cookies persist between the
        # site's pages).  Page visits then drift per client, unsynchronized.
        with tracer.span(
            "site", key=f"site:{schedule.rank}", rank=schedule.rank
        ) as site_span:
            for profile_index, profile in enumerate(profiles):
                client = clients[profile.name]
                visits_before = client.stats.visits
                successes_before = client.stats.successes
                with tracer.span(
                    "profile",
                    key=f"site:{schedule.rank}/{profile.name}",
                    profile=profile.name,
                ) as profile_span:
                    client.begin_site(schedule.rank, schedule.site_start)
                    # First attempt: the profile's slots within the block,
                    # identical ids to a no-retry crawl.
                    slot = profile_index * plan.page_count * repeat_visits
                    pending: List[Tuple[int, object]] = []
                    for page in plan.pages:
                        for _ in range(repeat_visits):
                            result = client.visit_page(
                                page,
                                site=plan.site,
                                site_rank=plan.rank,
                                visit_id=schedule.visit_base + slot,
                                attempt=1,
                            )
                            batch.append(result)
                            observe(profile.name, result, attempt=1)
                            if not result.success and retry_policy.should_retry(
                                result.visit.failure_reason, 1
                            ):
                                pending.append((slot, page))
                            slot += 1
                    # Retry rounds: failed retryable visits re-run at the
                    # end of the site plan, in visit-id order, with ids
                    # from the round's sub-block.
                    for attempt in range(2, retry_policy.max_attempts + 1):
                        if not pending:
                            break
                        backoff_rng = child_rng(
                            generator.seed,
                            "retry-backoff",
                            profile.name,
                            schedule.rank,
                            attempt,
                        )
                        with tracer.span(
                            "retry",
                            key=f"site:{schedule.rank}/{profile.name}"
                            f"/attempt:{attempt}",
                            attempt=attempt,
                        ) as retry_span:
                            retry_span.set("queued", len(pending))
                            still_failing: List[Tuple[int, object]] = []
                            for retry_slot, page in pending:
                                client.clock += retry_policy.backoff_seconds(
                                    attempt, backoff_rng
                                )
                                result = client.visit_page(
                                    page,
                                    site=plan.site,
                                    site_rank=plan.rank,
                                    visit_id=schedule.visit_base
                                    + (attempt - 1) * site_visits
                                    + retry_slot,
                                    attempt=attempt,
                                )
                                batch.append(result)
                                observe(profile.name, result, attempt=attempt)
                                if not result.success and retry_policy.should_retry(
                                    result.visit.failure_reason, attempt
                                ):
                                    still_failing.append((retry_slot, page))
                            pending = still_failing
                    profile_span.set(
                        "visits", client.stats.visits - visits_before
                    )
                    profile_span.set(
                        "successes", client.stats.successes - successes_before
                    )
            site_span.set("visits", len(batch))
        # Retry rounds interleave id sub-blocks across profiles; the store
        # stream must stay ascending in visit id for the shard merge.
        batch.sort(key=lambda result: result.visit.visit_id)
        store.store_visits(batch)
        if stream.enabled:
            # Site-local counter *deltas* (never cumulative snapshots,
            # which differ between serial and per-shard registries).
            deltas: Dict[str, float] = {}
            if metrics.enabled:
                for key, value in metrics.scrape():
                    delta = value - counters_before.get(key, 0)
                    if delta:
                        deltas[key] = delta
            stream.publish(
                StreamEvent(
                    kind=KIND_SITE_END,
                    site_rank=schedule.rank,
                    payload={
                        "site": plan.site,
                        "visits": len(batch),
                        "successes": sum(
                            1 for result in batch if result.success
                        ),
                        "metrics": deltas,
                    },
                )
            )
    return {name: client.stats for name, client in clients.items()}


def _crawl_shard(spec: _ShardSpec) -> _ShardResult:
    """Worker entry point: crawl one shard into a private on-disk store.

    The worker's tracer has no open span, so its site spans are subtree
    roots — exactly what the parent's :meth:`Tracer.adopt` expects.
    """
    obs = ObsContext.from_config(spec.obs_config)
    generator = WebGenerator(
        spec.seed, config=spec.web_config, ecosystem_config=spec.ecosystem_config
    )
    with MeasurementStore(spec.db_path, obs=obs) as store:
        stats = _crawl_sites(
            generator,
            store,
            spec.profiles,
            spec.schedules,
            timeout=spec.timeout,
            stateful=spec.stateful,
            repeat_visits=spec.repeat_visits,
            max_pages_per_site=spec.max_pages_per_site,
            obs=obs,
            retry_policy=spec.retry_policy,
            salvage_partial=spec.salvage_partial,
        )
    return _ShardResult(
        stats=stats,
        spans=obs.tracer.records,
        metrics=obs.metrics.as_dict() if obs.metrics.enabled else None,
        events=obs.stream.events,
        dropped=obs.stream.dropped,
    )


def run_measurement(
    seed: int,
    ranks: Sequence[int],
    store: Optional[MeasurementStore] = None,
    profiles: Sequence[BrowserProfile] = PAPER_PROFILES,
    max_pages_per_site: int = 25,
    generator: Optional[WebGenerator] = None,
    workers: int = 1,
    obs: Optional[ObsContext] = None,
    retry_policy: Optional[RetryPolicy] = None,
    salvage_partial: bool = False,
) -> MeasurementStore:
    """Convenience one-shot: generate the web, crawl it, return the store."""
    generator = generator or WebGenerator(seed)
    store = store or MeasurementStore(obs=obs)
    commander = Commander(
        generator,
        store,
        profiles=profiles,
        max_pages_per_site=max_pages_per_site,
        workers=workers,
        obs=obs,
        retry_policy=retry_policy,
        salvage_partial=salvage_partial,
    )
    commander.run(ranks)
    return store
