"""The commander: semi-parallel crawl orchestration (paper Appendix C).

The commander administers the experiment: it supplies each site's page set
to all clients at once (site-level synchronization) and waits until every
client finished the site before moving on.  Page visits within a site are
*not* synchronized — each client works through the pages at its own pace —
which is exactly the paper's "semi-parallel" design.

The commander also runs the discovery pre-crawl and consolidates all
results into the :class:`~repro.crawler.storage.MeasurementStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..browser.profile import BrowserProfile, PAPER_PROFILES
from ..errors import CrawlError
from ..web.sitegen import WebGenerator
from .client import CrawlClient, SiteVisitPlan
from .discovery import DiscoveryResult, discover_pages
from .storage import MeasurementStore
from .tranco import RankedList


@dataclass
class CrawlSummary:
    """Aggregate outcome of a crawl, per profile and overall."""

    sites_planned: int = 0
    sites_crawled: int = 0
    pages_discovered: int = 0
    visits: Dict[str, int] = field(default_factory=dict)
    successes: Dict[str, int] = field(default_factory=dict)

    def success_rate(self, profile: str) -> float:
        visits = self.visits.get(profile, 0)
        return self.successes.get(profile, 0) / visits if visits else 0.0

    @property
    def total_visits(self) -> int:
        return sum(self.visits.values())


class Commander:
    """Runs a full measurement: discovery, then the semi-parallel crawl.

    Parameters mirror the paper's configuration: the profiles to run, pages
    per site (25 in the paper), the per-visit timeout (30 s), stateless or
    stateful cookie handling, and how many times each profile visits each
    page (``repeat_visits``; the paper visits once).
    """

    def __init__(
        self,
        generator: WebGenerator,
        store: MeasurementStore,
        profiles: Sequence[BrowserProfile] = PAPER_PROFILES,
        max_pages_per_site: int = 25,
        timeout: float = 30.0,
        stateful: bool = False,
        repeat_visits: int = 1,
    ) -> None:
        if not profiles:
            raise CrawlError("at least one profile is required")
        names = [profile.name for profile in profiles]
        if len(set(names)) != len(names):
            raise CrawlError("profile names must be unique")
        self.generator = generator
        self.store = store
        self.profiles = tuple(profiles)
        self.max_pages_per_site = max_pages_per_site
        self.timeout = timeout
        self.stateful = stateful
        if repeat_visits < 1:
            raise CrawlError("repeat_visits must be >= 1")
        self.repeat_visits = repeat_visits
        self._next_visit_id = 1

    # -- pipeline ----------------------------------------------------------

    def run(self, ranks: Sequence[int]) -> CrawlSummary:
        """Crawl the sites at ``ranks`` with all profiles; returns a summary."""
        summary = CrawlSummary(sites_planned=len(ranks))
        clients = {
            profile.name: CrawlClient(
                profile,
                seed=self.generator.seed,
                timeout=self.timeout,
                stateful=self.stateful,
            )
            for profile in self.profiles
        }
        for rank in ranks:
            plan = self._plan_site(rank)
            if plan is None:
                continue
            self._crawl_site(plan, clients, summary)
            summary.sites_crawled += 1
            summary.pages_discovered += plan.page_count
        for name, client in clients.items():
            summary.visits[name] = client.stats.visits
            summary.successes[name] = client.stats.successes
        return summary

    def discover(self, ranks: Sequence[int]) -> List[DiscoveryResult]:
        """Run only the discovery pre-crawl (useful for inspection)."""
        return [
            discover_pages(self.generator.site(rank), self.max_pages_per_site)
            for rank in ranks
        ]

    def ranked_list(self, ranks: Sequence[int]) -> RankedList:
        """The Tranco-style list backing this crawl."""
        return RankedList.from_generator(self.generator, ranks)

    # -- internals ---------------------------------------------------------

    def _plan_site(self, rank: int) -> Optional[SiteVisitPlan]:
        site = self.generator.site(rank)
        discovery = discover_pages(site, self.max_pages_per_site)
        pages = [site.page_for(url) for url in discovery.pages]
        pages = [page for page in pages if page is not None]
        if not pages:
            return None
        return SiteVisitPlan(site=site.domain, rank=rank, pages=pages)

    def _crawl_site(
        self,
        plan: SiteVisitPlan,
        clients: Dict[str, CrawlClient],
        summary: CrawlSummary,
    ) -> None:
        # Site-level barrier: all clients start the site together; stateful
        # jars reset per site (cookies persist between the site's pages).
        barrier = max(client.clock for client in clients.values())
        for client in clients.values():
            client.synchronize(barrier)
            client.reset_state()
        # Page-level: each client visits the pages independently; with
        # repeat_visits > 1 every page is measured several times per
        # profile (the paper's repeated-measurement recommendation).
        for client in clients.values():
            for page in plan.pages:
                for _ in range(self.repeat_visits):
                    visit_id = self._allocate_visit_id()
                    result = client.visit_page(
                        page, site=plan.site, site_rank=plan.rank, visit_id=visit_id
                    )
                    self.store.store_visit(result)

    def _allocate_visit_id(self) -> int:
        visit_id = self._next_visit_id
        self._next_visit_id += 1
        return visit_id


def run_measurement(
    seed: int,
    ranks: Sequence[int],
    store: Optional[MeasurementStore] = None,
    profiles: Sequence[BrowserProfile] = PAPER_PROFILES,
    max_pages_per_site: int = 25,
    generator: Optional[WebGenerator] = None,
) -> MeasurementStore:
    """Convenience one-shot: generate the web, crawl it, return the store."""
    generator = generator or WebGenerator(seed)
    store = store or MeasurementStore()
    commander = Commander(
        generator, store, profiles=profiles, max_pages_per_site=max_pages_per_site
    )
    commander.run(ranks)
    return store
