"""Crawl framework: Tranco sampling, discovery, storage, clients, commander.

This subpackage reproduces the measurement framework of Demir et al. that
the paper builds on (Appendix C): a commander orchestrating per-profile
clients with site-level synchronization, consolidating results into a
single store.
"""

from .client import ClientStats, CrawlClient, SiteVisitPlan
from .commander import Commander, CrawlSummary, ShardHandoff, SiteSchedule, run_measurement
from .discovery import DiscoveryResult, discover_pages, first_party_links
from .retry import NO_RETRIES, RetryPolicy
from .storage import SCHEMA_VERSION, MeasurementStore
from .tranco import (
    PAPER_BUCKETS,
    RankBucket,
    RankedList,
    bucket_for_rank,
    sample_paper_buckets,
)

__all__ = [
    "ClientStats",
    "Commander",
    "CrawlClient",
    "CrawlSummary",
    "DiscoveryResult",
    "MeasurementStore",
    "NO_RETRIES",
    "PAPER_BUCKETS",
    "RankBucket",
    "RankedList",
    "RetryPolicy",
    "ShardHandoff",
    "SCHEMA_VERSION",
    "SiteSchedule",
    "SiteVisitPlan",
    "bucket_for_rank",
    "discover_pages",
    "first_party_links",
    "run_measurement",
    "sample_paper_buckets",
]
