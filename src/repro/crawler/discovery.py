"""Subpage discovery: the pre-crawl that collects pages to measure.

Three days before the main experiment, the paper visits each site's landing
page and collects up to 25 first-party links, recursing when the landing
page has too few (§3.1.2).  The discovery crawl here does the same against
the synthetic web: it "visits" the landing page blueprint, reads its
first-party links, and recurses through linked pages until the quota is
filled or the frontier is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from ..web.blueprint import PageBlueprint, SiteBlueprint
from ..web.url import URL


@dataclass(frozen=True)
class DiscoveryResult:
    """The measurement page set for one site: landing page first."""

    site: str
    rank: int
    pages: Tuple[str, ...]

    @property
    def page_count(self) -> int:
        return len(self.pages)


def first_party_links(page: PageBlueprint) -> List[URL]:
    """Links on ``page`` pointing within the page's own site."""
    return [link for link in page.links if link.is_same_site(page.url)]


def discover_pages(site: SiteBlueprint, max_pages: int = 25) -> DiscoveryResult:
    """Collect up to ``max_pages`` pages for ``site`` (landing page included).

    Breadth-first over first-party links, deduplicating by URL, recursing
    into already-discovered pages when the landing page alone does not
    provide enough links — mirroring the paper's recursive collection.
    """
    landing_url = str(site.landing_page.url)
    collected: List[str] = [landing_url]
    seen: Set[str] = {landing_url}
    frontier: List[PageBlueprint] = [site.landing_page]
    while frontier and len(collected) < max_pages:
        page = frontier.pop(0)
        for link in first_party_links(page):
            link_str = str(link)
            if link_str in seen:
                continue
            seen.add(link_str)
            linked_page = site.page_for(link_str)
            if linked_page is None:
                # Dangling link: a real crawler would fail the page later;
                # the discovery step simply skips it.
                continue
            collected.append(link_str)
            frontier.append(linked_page)
            if len(collected) >= max_pages:
                break
    return DiscoveryResult(site=site.domain, rank=site.rank, pages=tuple(collected))
