"""Deterministic retry policy for failed page visits.

The paper's crawl is single-attempt: ~8.7% of visits are lost to
timeouts and crawler errors, and the similarity analysis silently runs
on whatever survived.  :class:`RetryPolicy` makes failure handling an
explicit, replayable experiment parameter instead — per-reason
retryability over the :mod:`repro.web.faults` taxonomy, a bounded number
of attempts, and exponential backoff with *seeded* jitter.

Determinism contract (DESIGN.md §6.2): everything a retry changes must
be a pure function of the crawl plan.

* Whether a visit is retried follows from its failure reason, which is
  itself a seed-derived draw.
* The backoff jitter stream is ``child_rng(seed, "retry-backoff",
  profile, rank, attempt)`` — anchored per ``(site, profile, attempt
  round)``, never per worker or wall clock.
* Retried visits get visit ids from the site's pre-allocated id block
  (round-major: all attempt-2 ids after every attempt-1 id), so the
  re-enqueue order — rank, then visit id — is fixed by the plan.

Together these keep serial and sharded crawls byte-identical with
retries enabled, the same property PR 1 established for single-attempt
crawls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from ..errors import CrawlError
from ..web.faults import TRANSIENT_FAULTS


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed visits are re-attempted.

    ``max_attempts`` counts *total* attempts per page visit; the default
    of 1 reproduces the paper's single-attempt crawl exactly.  Backoff
    before attempt ``a`` (``a >= 2``) is::

        backoff_base * backoff_factor ** (a - 2) + U(0, backoff_jitter)

    with the uniform jitter drawn from the caller-supplied seeded RNG.
    """

    max_attempts: int = 1
    backoff_base: float = 5.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 2.0
    retryable: FrozenSet[str] = field(default=TRANSIENT_FAULTS)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CrawlError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_jitter < 0:
            raise CrawlError("backoff_base and backoff_jitter must be >= 0")
        if self.backoff_factor < 1.0:
            raise CrawlError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @classmethod
    def with_retries(cls, retries: int, **kwargs) -> "RetryPolicy":
        """The policy behind ``--retries N``: N re-attempts after the first."""
        if retries < 0:
            raise CrawlError(f"retries must be >= 0, got {retries}")
        return cls(max_attempts=retries + 1, **kwargs)

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 1

    def is_retryable(self, reason: Optional[str]) -> bool:
        """Whether ``reason`` names a transient (retryable) fault."""
        return reason is not None and reason in self.retryable

    def should_retry(self, reason: Optional[str], attempt: int) -> bool:
        """Whether a visit that failed with ``reason`` at ``attempt`` re-runs."""
        return attempt < self.max_attempts and self.is_retryable(reason)

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """The pause before ``attempt`` (>= 2), jitter drawn from ``rng``."""
        if attempt < 2:
            raise CrawlError(f"backoff applies from attempt 2, got {attempt}")
        fixed = self.backoff_base * self.backoff_factor ** (attempt - 2)
        return fixed + rng.uniform(0.0, self.backoff_jitter)


#: The paper's configuration: one attempt, no retries.
NO_RETRIES = RetryPolicy()
